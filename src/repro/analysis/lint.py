"""Repo-specific Python-AST lint rules (``python -m repro.analysis --lint``).

Generic linters cannot know this codebase's contracts; these rules encode
the four that have bitten (or nearly bitten) before:

* ``relation-version`` — a function that mutates a ``Relation``'s row
  storage (``_rows`` / ``_row_set``) must bump ``_version`` on the same
  path: the statistics catalog and the plan cache both invalidate by
  version polling, so a silent mutation serves stale plans forever.
* ``locked-state`` — methods of ``MetricsRegistry`` / ``StatisticsCatalog``
  / ``PlanCache`` must touch their private state only under ``self._lock``
  (these objects are shared across the async service's worker threads).
* ``async-blocking`` — coroutines in ``repro.service`` must not call
  blocking primitives (``time.sleep``, synchronous file I/O,
  ``subprocess``): one blocked coroutine stalls the whole event loop.
* ``watch-release`` — a module that registers ``Relation.watch`` hooks
  must also call ``unwatch`` somewhere: an unreleased hook pins the
  watcher (and its engine) for the relation's lifetime.
* ``picklable-plan`` — subclasses of ``PhysicalOperator`` / ``Predicate``
  must not store lambdas, open handles or engine/backend references on
  ``self``: physical plans are pickled wholesale to the sharded worker
  pool, and an unpicklable operator forces every shard onto the
  in-process fallback path (or, for an engine reference, ships the whole
  engine to every worker).

Findings are compared against a checked-in baseline
(``lint_baseline.json`` next to this module): pre-existing violations are
tolerated, *new* ones fail CI.  Baseline identity is ``(rule, path,
symbol)`` — line numbers are deliberately excluded so unrelated edits
don't churn the baseline.
"""

from __future__ import annotations

import ast
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Mutable state per lock-guarded class: these attributes must only be
#: touched under ``self._lock``.  Immutable configuration set once in
#: ``__init__`` (sample sizes, backend kinds) is deliberately not listed.
LOCKED_CLASSES = {
    "MetricsRegistry": ("_metrics",),
    "StatisticsCatalog": ("_entries", "_watchers", "_unwatch"),
    "PlanCache": ("_entries",),
}

#: Mutating method calls on ``_rows`` / ``_row_set`` that require a bump.
MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "add", "discard", "update"}
)

#: Call patterns that block the event loop inside a coroutine.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "urllib.request.urlopen",
    }
)

#: Blocking method names on arbitrary receivers (Path I/O, file handles).
BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Root classes whose subclasses travel inside pickled ``PhysicalPlan``
#: payloads to the sharded worker pool.
PLAN_STATE_ROOTS = ("PhysicalOperator", "Predicate")

#: Parameter / attribute names that denote an engine or backend object —
#: state a plan operator must never capture (the plan would drag the whole
#: engine through pickle on every shard dispatch).
ENGINE_REFERENCE_NAMES = frozenset({"engine", "backend"})

#: The format tag written into baselines and reports.
BASELINE_FORMAT = "repro-lint-baseline/1"
REPORT_FORMAT = "repro-lint-report/1"

#: Default baseline location: checked in next to this module.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "lint_baseline.json"


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line churn."""
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.symbol}: {self.message}"


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_attribute(node: ast.AST, names: Iterable[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in set(names)
    )


def _functions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """All (qualified name, function node) pairs, including methods."""
    found: List[Tuple[str, ast.AST]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                found.append((name, child))
                walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return found


# --------------------------------------------------------------------------- #
# Rule implementations (each: (tree, relative path) -> violations)
# --------------------------------------------------------------------------- #


def check_relation_version(tree: ast.Module, path: str) -> List[Violation]:
    violations: List[Violation] = []
    for symbol, function in _functions(tree):
        if symbol.rsplit(".", 1)[-1] == "__init__":
            continue  # constructors initialize storage; version starts fresh
        mutation: Optional[ast.AST] = None
        bumps_version = False
        for node in ast.walk(function):
            # receiver._rows.append(...) / receiver._row_set.add(...)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in ("_rows", "_row_set")
            ):
                mutation = mutation or node
            # receiver._rows = ... (rebinding the storage wholesale)
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr in (
                        "_rows",
                        "_row_set",
                    ):
                        mutation = mutation or node
                    if isinstance(target, ast.Attribute) and target.attr == "_version":
                        bumps_version = True
        if mutation is not None and not bumps_version:
            violations.append(
                Violation(
                    rule="relation-version",
                    path=path,
                    line=getattr(mutation, "lineno", 1),
                    symbol=symbol,
                    message=(
                        "mutates Relation row storage without bumping _version "
                        "on the same path (version polling will serve stale "
                        "statistics and cached plans)"
                    ),
                )
            )
    return violations


def check_locked_state(tree: ast.Module, path: str) -> List[Violation]:
    violations: List[Violation] = []

    def scan(
        node: ast.AST,
        guarded: Tuple[str, ...],
        locked: bool,
        findings: Set[Tuple[int, str]],
    ) -> None:
        if isinstance(node, ast.With):
            holds = any(
                _is_self_attribute(item.context_expr, ("_lock",))
                for item in node.items
            )
            for body_node in node.body:
                scan(body_node, guarded, locked or holds, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callback runs later, outside the caller's lock.
            body = node.body if isinstance(node.body, list) else [node.body]
            for body_node in body:
                scan(body_node, guarded, False, findings)
            return
        if isinstance(node, ast.Call):
            # ``self._helper(...)``: the func attribute is a bound method,
            # not state — the helper is checked on its own.  Anything
            # deeper (``self._entries.get(...)``, call arguments) still is.
            is_bound_method = (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            )
            if not is_bound_method:
                scan(node.func, guarded, locked, findings)
            for argument in list(node.args) + [kw.value for kw in node.keywords]:
                scan(argument, guarded, locked, findings)
            return
        if not locked and _is_self_attribute(node, guarded):
            findings.add((node.lineno, node.attr))
            return
        for child in ast.iter_child_nodes(node):
            scan(child, guarded, locked, findings)

    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef) or class_node.name not in LOCKED_CLASSES:
            continue
        guarded = LOCKED_CLASSES[class_node.name]
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            findings: Set[Tuple[int, str]] = set()
            scan(method, guarded, False, findings)
            if findings:
                first_line = min(line for line, _ in findings)
                attrs = sorted({attr for _, attr in findings})
                violations.append(
                    Violation(
                        rule="locked-state",
                        path=path,
                        line=first_line,
                        symbol=f"{class_node.name}.{method.name}",
                        message=(
                            f"touches {', '.join(attrs)} outside `with self._lock` "
                            "(shared across service worker threads)"
                        ),
                    )
                )
    return violations


def check_async_blocking(tree: ast.Module, path: str) -> List[Violation]:
    if "/service/" not in path.replace("\\", "/"):
        return []
    violations: List[Violation] = []

    def scan(node: ast.AST, symbol: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run in their own context
            if isinstance(child, ast.Call):
                dotted = _dotted_name(child.func)
                blocking = (
                    (dotted is not None and dotted in BLOCKING_CALLS)
                    or (isinstance(child.func, ast.Name) and child.func.id == "open")
                    or (
                        isinstance(child.func, ast.Attribute)
                        and child.func.attr in BLOCKING_METHODS
                    )
                )
                if blocking:
                    label = dotted or getattr(
                        child.func, "attr", getattr(child.func, "id", "call")
                    )
                    violations.append(
                        Violation(
                            rule="async-blocking",
                            path=path,
                            line=child.lineno,
                            symbol=symbol,
                            message=(
                                f"blocking call {label}() inside a coroutine — "
                                "use asyncio.to_thread or an async equivalent"
                            ),
                        )
                    )
            scan(child, symbol)

    for symbol, function in _functions(tree):
        if isinstance(function, ast.AsyncFunctionDef):
            for statement in function.body:
                scan(statement, symbol)
    return violations


def check_watch_release(tree: ast.Module, path: str) -> List[Violation]:
    normalized = path.replace("\\", "/")
    if normalized.endswith("relational/relation.py"):
        return []  # defines watch/unwatch; pairing is the caller's duty
    watch_calls: List[ast.Call] = []
    has_unwatch = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "watch":
                watch_calls.append(node)
            elif node.func.attr == "unwatch":
                has_unwatch = True
    if watch_calls and not has_unwatch:
        first = watch_calls[0]
        return [
            Violation(
                rule="watch-release",
                path=path,
                line=first.lineno,
                symbol="<module>",
                message=(
                    "registers Relation.watch hooks but never calls unwatch — "
                    "the hook pins its watcher for the relation's lifetime"
                ),
            )
        ]
    return []


def _unpicklable_reason(value: ast.AST) -> Optional[str]:
    """Why an assigned value cannot travel through pickle, or None."""
    for node in ast.walk(value):
        if isinstance(node, ast.Lambda):
            return "a lambda (pickle cannot serialize it)"
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if (isinstance(node.func, ast.Name) and node.func.id == "open") or dotted in (
                "io.open",
                "os.fdopen",
            ):
                return "an open file handle"
        if isinstance(node, ast.Name) and node.id in ENGINE_REFERENCE_NAMES:
            return f"an engine/backend reference ({node.id})"
        if isinstance(node, ast.Attribute) and node.attr in ENGINE_REFERENCE_NAMES:
            return f"an engine/backend reference (.{node.attr})"
    return None


def check_picklable_plan_state(tree: ast.Module, path: str) -> List[Violation]:
    """Plan operators and predicates must stay picklable.

    The sharded backend ships ``(shard engine, subtree)`` payloads through a
    ``ProcessPoolExecutor``; a lambda, an open handle or a captured
    engine/backend object on any operator or predicate breaks (or bloats)
    that path for every query whose plan contains the node.
    """
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    bases = {
        node.name: {base.id for base in node.bases if isinstance(base, ast.Name)}
        for node in classes
    }
    plan_classes: Set[str] = set(PLAN_STATE_ROOTS)
    changed = True
    while changed:  # transitive subclasses within the module
        changed = False
        for name, parents in bases.items():
            if name not in plan_classes and parents & plan_classes:
                plan_classes.add(name)
                changed = True

    violations: List[Violation] = []
    for class_node in classes:
        if class_node.name not in plan_classes:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                stores_on_self = any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in node.targets
                )
                if not stores_on_self:
                    continue
                reason = _unpicklable_reason(node.value)
                if reason is not None:
                    violations.append(
                        Violation(
                            rule="picklable-plan",
                            path=path,
                            line=node.lineno,
                            symbol=f"{class_node.name}.{method.name}",
                            message=(
                                f"stores {reason} on plan operator/predicate "
                                "state — physical plans are pickled to the "
                                "sharded worker pool"
                            ),
                        )
                    )
    return violations


RULES = (
    check_relation_version,
    check_locked_state,
    check_async_blocking,
    check_watch_release,
    check_picklable_plan_state,
)


# --------------------------------------------------------------------------- #
# Running + baseline workflow
# --------------------------------------------------------------------------- #


def default_root() -> Path:
    """The installed ``repro`` package directory (lint scans the source)."""
    return Path(__file__).resolve().parent.parent


def run_lint(root: Optional[Path] = None) -> List[Violation]:
    """Run every rule over all ``.py`` files under ``root``; sorted findings."""
    root = (root or default_root()).resolve()
    violations: List[Violation] = []
    for source in sorted(root.rglob("*.py")):
        relative = source.relative_to(root.parent).as_posix()
        try:
            tree = ast.parse(source.read_text(encoding="utf-8"))
        except SyntaxError as error:  # pragma: no cover - the suite would fail first
            violations.append(
                Violation("parse-error", relative, error.lineno or 1, "<module>", str(error))
            )
            continue
        for rule in RULES:
            violations.extend(rule(tree, relative))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def load_baseline(path: Optional[Path] = None) -> Set[Tuple[str, str, str]]:
    """The accepted violation keys (empty when no baseline exists yet)."""
    path = path or DEFAULT_BASELINE
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["rule"], entry["path"], entry["symbol"])
        for entry in payload.get("violations", [])
    }


def write_baseline(violations: Sequence[Violation], path: Optional[Path] = None) -> Path:
    path = path or DEFAULT_BASELINE
    payload = {
        "format": BASELINE_FORMAT,
        "violations": [
            {"rule": v.rule, "path": v.path, "symbol": v.symbol}
            for v in sorted(violations, key=lambda v: v.key())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def split_by_baseline(
    violations: Sequence[Violation], baseline: Set[Tuple[str, str, str]]
) -> Tuple[List[Violation], List[Violation]]:
    """``(new, baselined)`` partition of the findings."""
    new: List[Violation] = []
    known: List[Violation] = []
    for violation in violations:
        (known if violation.key() in baseline else new).append(violation)
    return new, known


def build_report(
    violations: Sequence[Violation], baseline: Set[Tuple[str, str, str]]
) -> Dict[str, object]:
    """The ``LINT_report.json`` payload CI uploads as an artifact."""
    new, known = split_by_baseline(violations, baseline)
    return {
        "format": REPORT_FORMAT,
        "total": len(violations),
        "new": [asdict(v) for v in new],
        "baselined": [asdict(v) for v in known],
        "rules": sorted({rule.__name__ for rule in RULES}),
    }
