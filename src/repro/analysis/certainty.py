"""Certainty dataflow: which parts of a plan can only see certain values.

An abstract interpretation over logical :class:`Query` trees with a
three-point lattice per relation/attribute:

* ``certain`` — provably placeholder-free (``?`` can never flow here);
* ``maybe``   — a placeholder may appear (some source field is uncertain);
* ``unknown`` — the analysis has no information about the source.

Facts originate at base relations — from the catalog's placeholder
densities (``density == 0`` ⇒ certain) or from a live probe such as
:meth:`~repro.core.exec.columnar.ColumnarBackend.certain_base` — and
propagate structurally: σ and π keep facts, δ relabels them, × / ⋈
concatenate, ∪ takes the pointwise least upper bound, − / ∩ keep the left
side's facts.

This pass is the single decision point for columnar eligibility: an
operator may run a vectorized kernel exactly when
:func:`subtree_certain` holds for the base relations under it.  The
runtime materialize fallback in the columnar backend remains only as
defense-in-depth against plans cached before an engine mutation (and is
counted in ``repro.columnar.materialize_fallbacks`` when it fires).
``Plan.explain()`` and ``explain_analyze`` render each node's verdict.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.algebra.query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)

#: Lattice points, ordered certain < unknown < maybe for the lub.
CERTAIN = "certain"
UNKNOWN = "unknown"
MAYBE = "maybe"

_ORDER = {CERTAIN: 0, UNKNOWN: 1, MAYBE: 2}


def lub(left: str, right: str) -> str:
    """Least upper bound: a value is certain only if both sources are."""
    return left if _ORDER[left] >= _ORDER[right] else right


class CertaintyContext:
    """Per-relation certainty facts, from densities or a live probe.

    ``densities`` maps relation name → placeholder density (0.0 ⇒ certain,
    anything greater ⇒ maybe); relations absent from the map fall through
    to ``probe`` (if given), else ``unknown``.  Probe results are memoized —
    one engine query per relation per context.
    """

    def __init__(
        self,
        densities: Optional[Mapping[str, float]] = None,
        probe: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._densities: Dict[str, float] = dict(densities or {})
        self._probe = probe
        self._cache: Dict[str, str] = {}

    @classmethod
    def from_statistics(cls, statistics: Any) -> "CertaintyContext":
        return cls(densities=statistics.placeholder_densities)

    @classmethod
    def from_probe(cls, probe: Callable[[str], bool]) -> "CertaintyContext":
        """Context over a live certainty probe (columnar lowering uses
        ``ColumnarBackend.certain_base``: a probe never answers unknown)."""
        return cls(probe=probe)

    def relation(self, name: str) -> str:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        density = self._densities.get(name)
        if density is not None:
            fact = CERTAIN if density == 0.0 else MAYBE
        elif self._probe is not None:
            fact = CERTAIN if self._probe(name) else MAYBE
        else:
            fact = UNKNOWN
        self._cache[name] = fact
        return fact

    def relations(self, names: Iterable[str]) -> str:
        """Combined fact over several base relations (lub; empty ⇒ unknown)."""
        fact: Optional[str] = None
        for name in names:
            fact = self.relation(name) if fact is None else lub(fact, self.relation(name))
        return fact if fact is not None else UNKNOWN

    def __repr__(self) -> str:
        return f"CertaintyContext({sorted(self._densities)})"


def subtree_certain(base_relations: Sequence[str], context: CertaintyContext) -> bool:
    """Columnar eligibility: every source relation provably certain.

    An empty relation list (a hand-built plan without provenance) is *not*
    eligible — the analysis cannot vouch for sources it cannot see.
    """
    if not base_relations:
        return False
    return all(context.relation(name) == CERTAIN for name in base_relations)


# --------------------------------------------------------------------------- #
# Per-attribute dataflow over logical trees
# --------------------------------------------------------------------------- #


def attribute_facts(
    query: Query, context: CertaintyContext, schema_context: Any = None
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Ordered ``(attribute, fact)`` pairs for ``query``'s output, or None.

    ``schema_context`` (a :class:`~repro.analysis.schema.SchemaContext`)
    supplies base-relation attribute lists; without one (or for relations
    it does not know) the result is None and callers fall back to the
    relation-level facts of :func:`node_certainty`.
    """

    def walk(node: Query) -> Optional[Tuple[Tuple[str, str], ...]]:
        if isinstance(node, BaseRelation):
            if schema_context is None:
                return None
            attrs = schema_context.relation_attributes(node.name)
            if attrs is None:
                return None
            fact = context.relation(node.name)
            return tuple((a, fact) for a in attrs)
        if isinstance(node, Select):
            return walk(node.child)
        if isinstance(node, Project):
            child = walk(node.child)
            if child is None:
                return None
            facts = dict(child)
            return tuple((a, facts.get(a, UNKNOWN)) for a in node.attributes)
        if isinstance(node, Rename):
            child = walk(node.child)
            if child is None:
                return None
            return tuple(
                (node.new if a == node.old else a, fact) for a, fact in child
            )
        if isinstance(node, (Product, Join)):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(node, Union):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            if len(left) != len(right):
                return None
            return tuple(
                (attr, lub(fact, right_fact))
                for (attr, fact), (_, right_fact) in zip(left, right)
            )
        if isinstance(node, (Difference, Intersection)):
            # Output tuples are drawn from the left side only.
            return walk(node.left)
        return None

    return walk(query)


def node_certainty(query: Query, context: CertaintyContext) -> Dict[int, str]:
    """Relation-level fact per node, keyed by ``id(node)``.

    A node's fact is the lub over the base relations its subtree reads —
    exactly the quantity columnar eligibility is decided on.
    """
    facts: Dict[int, str] = {}

    def walk(node: Query) -> str:
        if isinstance(node, BaseRelation):
            fact = context.relation(node.name)
        else:
            children = node.children()
            fact = UNKNOWN if not children else None  # type: ignore[assignment]
            for child in children:
                child_fact = walk(child)
                fact = child_fact if fact is None else lub(fact, child_fact)
        facts[id(node)] = fact
        return fact

    walk(query)
    return facts


def render_with_certainty(
    query: Query, context: CertaintyContext, indent: str = ""
) -> str:
    """``Query.to_text`` with each node's certainty verdict appended.

    ``unknown`` nodes render unannotated — a statistics-free plan would
    otherwise drown in noise.
    """
    facts = node_certainty(query, context)

    def walk(node: Query, prefix: str) -> list:
        fact = facts[id(node)]
        suffix = f"  [{fact}]" if fact != UNKNOWN else ""
        lines = [prefix + node.node_label() + suffix]
        for child in node.children():
            lines.extend(walk(child, prefix + "  "))
        return lines

    return "\n".join(walk(query, indent))


def physical_certainty(
    base_relations: Sequence[str], context: CertaintyContext
) -> str:
    """Verdict for a physical operator via its recorded base relations."""
    if not base_relations:
        return UNKNOWN
    return context.relations(base_relations)
