"""The application scenarios of Section 10.

* :mod:`repro.apps.repairs` — minimal repairs of inconsistent databases as UWSDTs.
* :mod:`repro.apps.medical` — interdependent medical data for incomplete patient records.
"""

from .medical import MedicalScenario, PATIENT_RELATION, TREATMENT_RELATION
from .repairs import (
    consistent_answer,
    key_violation_groups,
    minimal_repairs,
    possible_answer,
    repairs_to_uwsdt,
)

__all__ = [
    "MedicalScenario",
    "PATIENT_RELATION",
    "TREATMENT_RELATION",
    "consistent_answer",
    "key_violation_groups",
    "minimal_repairs",
    "possible_answer",
    "repairs_to_uwsdt",
]
