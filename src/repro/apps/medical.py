"""Application scenario 2 (Section 10): interdependent medical data.

Medical knowledge — medications, diseases, symptoms, procedures — forms
clusters of interdependent facts: a medication may be contraindicated for a
disease, a procedure prescribed for one condition and forbidden for
another.  A patient with an incompletely specified history corresponds to a
set of possible worlds, where interdependent choices must stay together.

Following the paper's outline, interrelated values (linked facts) are placed
in one component each, independent facts in separate components, and the
static catalogue (the certain part) in template relations.  The module then
answers the two questions the paper mentions:

* possible diagnoses given an incomplete patient record,
* commonly applicable (certain) medications for a set of possible diseases.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..core.component import Component
from ..core.fields import FieldRef
from ..core.uwsdt import UWSDT
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..relational.values import PLACEHOLDER

#: Relation names used by the scenario.
PATIENT_RELATION = "PatientRecord"
TREATMENT_RELATION = "Treatment"


class MedicalScenario:
    """Builder for a patient-record UWSDT over a fixed treatment catalogue.

    Parameters
    ----------
    treatments:
        The certain catalogue: ``(disease, medication)`` pairs meaning the
        medication is approved for the disease.
    """

    def __init__(self, treatments: Iterable[Tuple[str, str]]) -> None:
        self.treatments = list(treatments)
        if not self.treatments:
            raise RepresentationError("the treatment catalogue must not be empty")

    def build_patient_record(
        self,
        patient: str,
        observations: Dict[str, Any],
        candidate_clusters: Sequence[Dict[str, Sequence[Any]]],
        cluster_probabilities: Sequence[Sequence[float]] = (),
    ) -> UWSDT:
        """Build a UWSDT for one patient.

        ``observations`` holds the certain fields of the record (attribute →
        value).  Each entry of ``candidate_clusters`` is a cluster of
        *correlated* unknown attributes: a mapping attribute → list of
        candidate values, where the i-th candidates of all attributes in the
        cluster belong together (they form the i-th local world of one
        component) — e.g. a diagnosis together with the symptom explaining it.
        """
        attributes = ["PATIENT"] + sorted(observations) + sorted(
            {attribute for cluster in candidate_clusters for attribute in cluster}
        )
        schema = RelationSchema(PATIENT_RELATION, attributes)
        uwsdt = UWSDT()
        uwsdt.add_relation(schema)

        template_values: List[Any] = []
        for attribute in attributes:
            if attribute == "PATIENT":
                template_values.append(patient)
            elif attribute in observations:
                template_values.append(observations[attribute])
            else:
                template_values.append(PLACEHOLDER)
        tuple_id = 1
        uwsdt.add_template_tuple(PATIENT_RELATION, tuple_id, template_values)

        for index, cluster in enumerate(candidate_clusters):
            cluster_attributes = sorted(cluster)
            lengths = {len(cluster[a]) for a in cluster_attributes}
            if len(lengths) != 1:
                raise RepresentationError(
                    f"cluster {index} has ragged candidate lists: "
                    f"{ {a: len(cluster[a]) for a in cluster_attributes} }"
                )
            size = lengths.pop()
            fields = tuple(
                FieldRef(PATIENT_RELATION, tuple_id, attribute) for attribute in cluster_attributes
            )
            rows = [
                tuple(cluster[attribute][world] for attribute in cluster_attributes)
                for world in range(size)
            ]
            if index < len(cluster_probabilities) and cluster_probabilities[index]:
                probabilities = list(cluster_probabilities[index])
            else:
                probabilities = [1.0 / size] * size
            uwsdt.new_component(Component(fields, rows, probabilities))

        # The certain treatment catalogue lives in its own template relation.
        treatment_schema = RelationSchema(TREATMENT_RELATION, ("DISEASE", "MEDICATION"))
        uwsdt.add_relation(treatment_schema)
        for index, (disease, medication) in enumerate(self.treatments, start=1):
            uwsdt.add_template_tuple(TREATMENT_RELATION, index, (disease, medication))
        return uwsdt

    # ------------------------------------------------------------------ #
    # The two questions of Section 10
    # ------------------------------------------------------------------ #

    def possible_diagnoses(self, record: UWSDT, attribute: str = "DIAGNOSIS") -> List[Tuple[Any, float]]:
        """Possible values of the diagnosis attribute with their confidences."""
        from ..core.confidence import uwsdt_possible_with_confidence

        schema = record.schema.relation(PATIENT_RELATION)
        position = schema.position(attribute)
        results: Dict[Any, float] = {}
        for values, confidence in uwsdt_possible_with_confidence(record, PATIENT_RELATION):
            value = values[position]
            results[value] = max(results.get(value, 0.0), confidence)
        # Aggregate by diagnosis value: confidence that *some* possible record
        # has that diagnosis.  Since the record is a single tuple, the max is
        # exact.
        return sorted(results.items(), key=lambda item: (-item[1], repr(item[0])))

    def common_medications(self, diseases: Iterable[Any]) -> List[str]:
        """Medications approved for *every* one of the given (possible) diseases."""
        diseases = list(diseases)
        if not diseases:
            return []
        per_disease: Dict[Any, set] = {}
        for disease, medication in self.treatments:
            per_disease.setdefault(disease, set()).add(medication)
        common = per_disease.get(diseases[0], set()).copy()
        for disease in diseases[1:]:
            common &= per_disease.get(disease, set())
        return sorted(common)

    def candidate_medications(self, record: UWSDT, attribute: str = "DIAGNOSIS") -> List[str]:
        """Medications approved for every possible diagnosis of the patient."""
        diagnoses = [value for value, _ in self.possible_diagnoses(record, attribute)]
        return self.common_medications(diagnoses)
