"""Application scenario 1 (Section 10): managing inconsistent databases via repairs.

A database is inconsistent when it violates integrity constraints.  One
standard approach keeps all *minimal repairs* — consistent instances
obtained by a minimal number of changes — and answers queries over the set
of repairs.  Since repairs overlap substantially, the set of repairs is a
natural fit for UWSDTs: the shared (consistent) part of the database lands
in the template relations and the differences between repairs in the
components.

This module implements:

* minimal repairs under *key constraints* by tuple deletion (the classical
  setting of Arenas, Bertossi & Chomicki),
* the conversion of the repair set into a UWSDT,
* consistent (certain) and possible query answers over the repairs —
  showing the paper's point that the UWSDT answer retains strictly more
  information than the certain answers alone.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..core.uwsdt import UWSDT
from ..core.wsd import WSD
from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..worlds.worldset import WorldSet


def key_violation_groups(relation: Relation, key: Sequence[str]) -> List[List[Tuple[Any, ...]]]:
    """Group tuples by key value; groups with more than one tuple are violations."""
    positions = relation.schema.positions(key)
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation:
        groups.setdefault(tuple(row[p] for p in positions), []).append(row)
    return [rows for rows in groups.values() if len(rows) > 1]


def minimal_repairs(relation: Relation, key: Sequence[str]) -> WorldSet:
    """All minimal repairs of ``relation`` under the key constraint ``key``.

    A minimal repair keeps exactly one tuple from every key-violating group
    and every non-violating tuple; the result is the set of such choices.
    """
    positions = relation.schema.positions(key)
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation:
        groups.setdefault(tuple(row[p] for p in positions), []).append(row)

    certain_rows = [rows[0] for rows in groups.values() if len(rows) == 1]
    conflicting = [rows for rows in groups.values() if len(rows) > 1]

    repair_count = 1
    for rows in conflicting:
        repair_count *= len(rows)
    if repair_count > 1_000_000:
        raise RepresentationError(
            f"{repair_count} repairs would be enumerated; use repairs_to_uwsdt instead"
        )

    worldset = WorldSet()
    for choice in itertools.product(*conflicting) if conflicting else [()]:
        repaired = Relation(relation.schema)
        for row in certain_rows:
            repaired.insert(row)
        for row in choice:
            repaired.insert(row)
        worldset.add(Database([repaired]), 1.0 / repair_count)
    return worldset


def repairs_to_uwsdt(relation: Relation, key: Sequence[str]) -> UWSDT:
    """Encode the set of minimal repairs directly as a UWSDT (without enumerating it).

    Every non-conflicting tuple becomes a certain template tuple.  Every
    key-violating group becomes one component whose local worlds choose
    which tuple of the group survives: the group's tuples all appear in the
    template, and the component marks, per local world, all but one of them
    as deleted.  The repairs are equiprobable.
    """
    from ..core.component import Component
    from ..core.fields import FieldRef
    from ..relational.values import BOTTOM, PLACEHOLDER

    positions = relation.schema.positions(key)
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation:
        groups.setdefault(tuple(row[p] for p in positions), []).append(row)

    uwsdt = UWSDT()
    uwsdt.add_relation(relation.schema)
    attributes = relation.schema.attributes
    next_tid = 1
    for key_value, rows in groups.items():
        if len(rows) == 1:
            uwsdt.add_template_tuple(relation.schema.name, next_tid, rows[0])
            next_tid += 1
            continue
        # Conflicting group: each tuple's first non-key attribute (or first
        # attribute) becomes a presence placeholder handled by one component.
        presence_attribute = next(
            (a for a in attributes if a not in key), attributes[0]
        )
        group_tids = []
        fields = []
        for row in rows:
            template_values = [
                PLACEHOLDER if attribute == presence_attribute else value
                for attribute, value in zip(attributes, row)
            ]
            uwsdt.add_template_tuple(relation.schema.name, next_tid, template_values)
            fields.append(FieldRef(relation.schema.name, next_tid, presence_attribute))
            group_tids.append((next_tid, row))
            next_tid += 1
        local_worlds = []
        probability = 1.0 / len(rows)
        presence_position = relation.schema.position(presence_attribute)
        for surviving_index in range(len(rows)):
            local_world = []
            for index, (tid, row) in enumerate(group_tids):
                if index == surviving_index:
                    local_world.append(row[presence_position])
                else:
                    local_world.append(BOTTOM)
            local_worlds.append(tuple(local_world))
        uwsdt.new_component(
            Component(tuple(fields), local_worlds, [probability] * len(rows))
        )
    return uwsdt


def consistent_answer(repairs: WorldSet, relation_name: str) -> set:
    """Certain answers: tuples present in every repair (the classical semantics)."""
    return repairs.certain_tuples(relation_name)


def possible_answer(repairs: WorldSet, relation_name: str) -> set:
    """Possible answers: tuples present in at least one repair."""
    return repairs.possible_tuples(relation_name)
