"""Benchmark harness regenerating the tables and figures of Section 9."""

from .harness import (
    DEFAULT_SIZES,
    PAPER_DENSITIES,
    PLANNER_BENCH_QUERIES,
    CensusInstance,
    census_instance,
    clear_instance_cache,
    density_label,
    format_records,
    run_calibration_experiment,
    run_chase_experiment,
    run_characteristics_experiment,
    run_component_size_experiment,
    run_planner_experiment,
    run_query_experiment,
    run_repeated_planning_experiment,
    run_representation_size_experiment,
)

__all__ = [
    "DEFAULT_SIZES",
    "PAPER_DENSITIES",
    "PLANNER_BENCH_QUERIES",
    "CensusInstance",
    "census_instance",
    "clear_instance_cache",
    "density_label",
    "format_records",
    "run_calibration_experiment",
    "run_chase_experiment",
    "run_characteristics_experiment",
    "run_component_size_experiment",
    "run_planner_experiment",
    "run_query_experiment",
    "run_repeated_planning_experiment",
    "run_representation_size_experiment",
]
