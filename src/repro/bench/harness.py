"""Benchmark harness: builds census UWSDTs and regenerates the paper's figures.

Every experiment of Section 9 is parameterized by the relation size (number
of tuples) and the placeholder density.  The paper runs 0.1–12.5 million
tuples on PostgreSQL; the harness defaults to laptop-scale sizes (1k–50k)
with the same densities, which preserves the *shape* of every reported
curve and table (linear scaling in size and density, query time tracking
the one-world time, component-size distribution dominated by singletons).

The functions here return plain data structures (lists of dictionaries);
the ``benchmarks/`` pytest-benchmark suites and the example scripts format
them into the rows/series the paper reports.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..census.dependencies import census_dependencies
from ..census.generator import CensusGenerator
from ..census.queries import (
    CENSUS_QUERIES,
    q5_product_form,
    q6_self_join_product_form,
    q_four_way_join,
)
from ..census.schema import CENSUS_RELATION
from ..core.algebra.query import Query, evaluate_on_database, evaluate_on_uwsdt
from ..core.chase import chase_uwsdt
from ..core.planner import Statistics, plan
from ..core.planner.calibrate import calibrate
from ..core.planner.sampling import sampling_call_count
from ..core.uwsdt import UWSDT
from ..relational.database import Database
from ..relational.relation import Relation

#: The placeholder densities used throughout the paper's evaluation.
PAPER_DENSITIES: Tuple[float, ...] = (0.00005, 0.0001, 0.0005, 0.001)

#: Query factories for the planned-vs-unplanned experiment, by headline:
#: join *fusion* (σ∘× → ⋈) for the product forms, join *ordering* for the
#: 4-way chain.
PLANNER_BENCH_QUERIES: Dict[str, Callable[[], "Query"]] = {
    "q6_self_join": q6_self_join_product_form,
    "q5_product": q5_product_form,
    "four_way": q_four_way_join,
}

#: Human-readable labels for the densities (matching the paper's axis labels).
DENSITY_LABELS: Dict[float, str] = {
    0.00005: "0.005%",
    0.0001: "0.01%",
    0.0005: "0.05%",
    0.001: "0.1%",
    0.0: "0%",
}

#: Default laptop-scale sweep of relation sizes (stand-in for 0.1M–12.5M tuples).
DEFAULT_SIZES: Tuple[int, ...] = (1_000, 2_000, 5_000, 10_000)


def density_label(density: float) -> str:
    """Render a density as the paper writes it (e.g. ``0.1%``)."""
    return DENSITY_LABELS.get(density, f"{density * 100:g}%")


class CensusInstance:
    """A generated census instance: clean relation, noisy or-set relation, UWSDT."""

    def __init__(self, rows: int, density: float, seed: int = 42) -> None:
        self.rows = rows
        self.density = density
        self.seed = seed
        generator = CensusGenerator(seed=seed)
        self.clean_relation: Relation = generator.clean_relation(rows)
        if density > 0:
            self.orset_relation = generator.add_noise(self.clean_relation, density)
            self.uwsdt: UWSDT = UWSDT.from_orset_relation(self.orset_relation)
        else:
            self.orset_relation = None
            self.uwsdt = UWSDT.from_relation(self.clean_relation)

    def chased(self) -> UWSDT:
        """A chased copy of the UWSDT (the paper's cleaned representation)."""
        cleaned = self.uwsdt.copy()
        chase_uwsdt(cleaned, census_dependencies())
        return cleaned

    def one_world_database(self) -> Database:
        """The clean relation as an ordinary database (the 0 % baseline)."""
        return Database([self.clean_relation.copy(CENSUS_RELATION)])


_INSTANCE_CACHE: Dict[Tuple[int, float, int], CensusInstance] = {}


def census_instance(rows: int, density: float, seed: int = 42) -> CensusInstance:
    """Build (and cache) a census instance for the given parameters."""
    key = (rows, density, seed)
    if key not in _INSTANCE_CACHE:
        _INSTANCE_CACHE[key] = CensusInstance(rows, density, seed)
    return _INSTANCE_CACHE[key]


def clear_instance_cache() -> None:
    """Drop all cached census instances (used by tests)."""
    _INSTANCE_CACHE.clear()


def _timed(action: Callable[[], Any]) -> Tuple[Any, float]:
    start = time.perf_counter()
    result = action()
    return result, time.perf_counter() - start


# --------------------------------------------------------------------------- #
# Figure 26: chase times
# --------------------------------------------------------------------------- #


def run_chase_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    densities: Sequence[float] = PAPER_DENSITIES,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Chase the 12 dependencies for every (size, density) pair (Figure 26).

    Returns one record per pair with the elapsed time and representation
    statistics before/after the chase.
    """
    records: List[Dict[str, Any]] = []
    for density in densities:
        for rows in sizes:
            instance = census_instance(rows, density, seed)
            uwsdt = instance.uwsdt.copy()
            before = uwsdt.statistics()
            _, elapsed = _timed(lambda: chase_uwsdt(uwsdt, census_dependencies()))
            after = uwsdt.statistics()
            records.append(
                {
                    "figure": "26",
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "chase_seconds": elapsed,
                    "components_before": before["components"],
                    "components_after": after["components"],
                    "components_gt1_after": after["components_gt1"],
                    "component_relation_size_after": after["component_relation_size"],
                }
            )
    return records


# --------------------------------------------------------------------------- #
# Figure 27: UWSDT characteristics after the chase and after each query
# --------------------------------------------------------------------------- #


def run_characteristics_experiment(
    rows: int = 10_000,
    densities: Sequence[float] = PAPER_DENSITIES,
    queries: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Reproduce the Figure 27 table: #comp, #comp>1, |C|, |R| per density and query."""
    query_names = list(queries) if queries is not None else list(CENSUS_QUERIES)
    records: List[Dict[str, Any]] = []
    for density in densities:
        instance = census_instance(rows, density, seed)
        chased = instance.chased()
        statistics = chased.statistics()
        records.append(
            {
                "figure": "27",
                "stage": "chase",
                "rows": rows,
                "density": density,
                "density_label": density_label(density),
                "components": statistics["components"],
                "components_gt1": statistics["components_gt1"],
                "component_relation_size": statistics["component_relation_size"],
                "template_size": chased.template_size(CENSUS_RELATION),
            }
        )
        for name in query_names:
            working_copy = chased.copy()
            result_relation = evaluate_on_uwsdt(CENSUS_QUERIES[name](), working_copy, name)
            records.append(
                {
                    "figure": "27",
                    "stage": name,
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "components": _components_touching(working_copy, result_relation),
                    "components_gt1": _components_touching(
                        working_copy, result_relation, minimum_arity=2
                    ),
                    "component_relation_size": _component_values_touching(
                        working_copy, result_relation
                    ),
                    "template_size": working_copy.template_size(result_relation),
                }
            )
    return records


def _components_touching(uwsdt: UWSDT, relation_name: str, minimum_arity: int = 1) -> int:
    """Components defining at least one field of ``relation_name`` (of a minimum arity)."""
    count = 0
    for component in uwsdt.components.values():
        relation_fields = [f for f in component.fields if f.relation == relation_name]
        if relation_fields and len(relation_fields) >= minimum_arity:
            count += 1
    return count


def _component_values_touching(uwsdt: UWSDT, relation_name: str) -> int:
    """Rows of the uniform ``C`` relation belonging to ``relation_name``."""
    total = 0
    for component in uwsdt.components.values():
        relation_fields = [f for f in component.fields if f.relation == relation_name]
        total += len(relation_fields) * component.size
    return total


# --------------------------------------------------------------------------- #
# Figure 28: component size distribution
# --------------------------------------------------------------------------- #


def run_component_size_experiment(
    sizes: Sequence[int] = (5_000, 10_000),
    densities: Sequence[float] = PAPER_DENSITIES,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Reproduce Figure 28: placeholders-per-component histogram of the chased relations."""
    records: List[Dict[str, Any]] = []
    for rows in sizes:
        for density in densities:
            instance = census_instance(rows, density, seed)
            chased = instance.chased()
            histogram = chased.component_size_distribution()
            records.append(
                {
                    "figure": "28",
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "size_1": histogram.get(1, 0),
                    "size_2": histogram.get(2, 0),
                    "size_3": histogram.get(3, 0),
                    "size_4_plus": sum(count for size, count in histogram.items() if size >= 4),
                }
            )
    return records


# --------------------------------------------------------------------------- #
# Figure 30: query evaluation times (including the one-world baseline)
# --------------------------------------------------------------------------- #


def run_query_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    densities: Sequence[float] = PAPER_DENSITIES + (0.0,),
    queries: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Evaluate Q1–Q6 on UWSDTs of every (size, density), plus the 0 % one-world baseline."""
    query_names = list(queries) if queries is not None else list(CENSUS_QUERIES)
    records: List[Dict[str, Any]] = []
    for density in densities:
        for rows in sizes:
            instance = census_instance(rows, density, seed)
            if density == 0.0:
                database = instance.one_world_database()
                for name in query_names:
                    query = CENSUS_QUERIES[name]()
                    result, elapsed = _timed(
                        lambda q=query: evaluate_on_database(q, database, "result")
                    )
                    records.append(
                        {
                            "figure": "30",
                            "query": name,
                            "rows": rows,
                            "density": density,
                            "density_label": density_label(density),
                            "seconds": elapsed,
                            "result_size": len(result),
                        }
                    )
                continue
            chased = instance.chased()
            for name in query_names:
                working_copy = chased.copy()
                query = CENSUS_QUERIES[name]()
                result_name, elapsed = _timed(
                    lambda q=query, u=working_copy, n=name: evaluate_on_uwsdt(q, u, n)
                )
                records.append(
                    {
                        "figure": "30",
                        "query": name,
                        "rows": rows,
                        "density": density,
                        "density_label": density_label(density),
                        "seconds": elapsed,
                        "result_size": working_copy.template_size(name),
                    }
                )
    return records


# --------------------------------------------------------------------------- #
# Planner experiment: planned vs unplanned evaluation of σ-over-× queries
# --------------------------------------------------------------------------- #


def run_planner_experiment(
    sizes: Sequence[int] = (1_000, 2_000),
    densities: Sequence[float] = (0.0, 0.001),
    query_factory: Optional[Callable[[], Query]] = None,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Compare planned and unplanned evaluation of a product-form join query.

    The default query is
    :func:`~repro.census.queries.q6_self_join_product_form` —
    ``σ_{B1=W2}(Q6' × Q6')`` over the *unselective* census query Q6, so the
    unplanned AST materializes a genuinely quadratic product template while
    the planner's σ(A=B)∘× → ⋈ fusion keeps it near-linear
    (:func:`~repro.census.queries.q5_product_form` is the paper-faithful but
    highly selective alternative, and
    :func:`~repro.census.queries.q_four_way_join` exercises the join-order
    enumerator instead of the fusion rule).  Each record reports both
    wall-clock times, the speedup, the chosen join order, and the planner's
    own cost estimates for cross-checking the model against reality.
    """
    factory = query_factory or q6_self_join_product_form
    records: List[Dict[str, Any]] = []
    for density in densities:
        for rows in sizes:
            instance = census_instance(rows, density, seed)
            query = factory()
            if density == 0.0:
                database = instance.one_world_database()
                built_plan = plan(query, Statistics.from_database(database))
                _, unplanned_seconds = _timed(
                    lambda: query.run(database, "result", optimize=False)
                )
                _, planned_seconds = _timed(
                    lambda: query.run(database, "result", plan=built_plan)
                )
            else:
                chased = instance.chased()
                built_plan = plan(query, Statistics.from_uwsdt(chased))
                unplanned_copy = chased.copy()
                _, unplanned_seconds = _timed(
                    lambda: query.run(unplanned_copy, "result", optimize=False)
                )
                planned_copy = chased.copy()
                _, planned_seconds = _timed(
                    lambda: query.run(planned_copy, "result", plan=built_plan)
                )
            records.append(
                {
                    "experiment": "planner",
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "unplanned_seconds": unplanned_seconds,
                    "planned_seconds": planned_seconds,
                    "speedup": unplanned_seconds / planned_seconds
                    if planned_seconds > 0
                    else float("inf"),
                    "estimated_cost_before": built_plan.cost_before.cost,
                    "estimated_cost_after": built_plan.cost_after.cost,
                    "rewrites": len(built_plan.applications),
                    "join_order": built_plan.join_order,
                }
            )
    return records


# --------------------------------------------------------------------------- #
# Statistics catalog: repeated-planning overhead (cold vs warm)
# --------------------------------------------------------------------------- #


def run_repeated_planning_experiment(
    sizes: Sequence[int] = (1_000, 2_000),
    densities: Sequence[float] = (0.0, 0.001),
    query_factory: Optional[Callable[[], Query]] = None,
    warm_repeats: int = 5,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """Cold-vs-warm planning against the same engine (the catalog's payoff).

    The first ``Query.plan(engine)`` samples every base relation into the
    engine's statistics catalog; every later plan of the same (or a
    similar) query is served from the cache.  Each record reports both
    wall-clock times, the overhead ratio, and the sampling-call deltas —
    the warm delta must be zero on an unchanged engine.
    """
    factory = query_factory or q_four_way_join
    records: List[Dict[str, Any]] = []
    for density in densities:
        for rows in sizes:
            instance = census_instance(rows, density, seed)
            engine: Any
            if density == 0.0:
                engine = instance.one_world_database()
            else:
                engine = instance.chased()
            query = factory()
            calls_start = sampling_call_count()
            _, cold_seconds = _timed(lambda: query.plan(engine))
            cold_calls = sampling_call_count() - calls_start
            warm_seconds = []
            calls_warm_start = sampling_call_count()
            for _ in range(warm_repeats):
                _, elapsed = _timed(lambda: query.plan(engine))
                warm_seconds.append(elapsed)
            warm_calls = sampling_call_count() - calls_warm_start
            best_warm = min(warm_seconds)
            records.append(
                {
                    "experiment": "repeated-planning",
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "cold_plan_seconds": cold_seconds,
                    "warm_plan_seconds": best_warm,
                    "overhead_ratio": cold_seconds / best_warm if best_warm > 0 else float("inf"),
                    "cold_sampling_calls": cold_calls,
                    "warm_sampling_calls": warm_calls,
                }
            )
    return records


# --------------------------------------------------------------------------- #
# Self-tuning feedback: fold executed-operator timings back into the profile
# --------------------------------------------------------------------------- #


def run_feedback_experiment(
    sizes: Sequence[int] = (1_000, 2_000),
    densities: Sequence[float] = (0.0, 0.001),
    query_factory: Optional[Callable[[], Query]] = None,
    alpha: float = 0.5,
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """One self-tuning iteration per (size, density) on the repeated-planning
    benchmark query.

    Each record reports the cost model's estimated-vs-observed time error
    before and after folding the run's execution metrics into the constants
    (:func:`repro.core.exec.feedback.fold_metrics`) — the error must not
    increase, and on a mis-calibrated profile it visibly drops.  Metrics are
    also folded into the engine's statistics catalog (actual-cardinality
    feedback), whose observation count is reported.
    """
    from ..core.exec import cost_model_error, fold_metrics
    from ..core.planner import CostModel
    from ..core.planner.catalog import catalog_for

    factory = query_factory or q_four_way_join
    records: List[Dict[str, Any]] = []
    for density in densities:
        for rows in sizes:
            instance = census_instance(rows, density, seed)
            engine: Any
            if density == 0.0:
                engine = instance.one_world_database()
            else:
                engine = instance.chased()
            query = factory()
            result = query.run(engine, "result", collect_metrics=True)
            metrics = result.metrics
            model = CostModel.for_engine(metrics.engine)
            error_before = cost_model_error(metrics, model)
            tuned = fold_metrics(metrics, model, alpha=alpha)
            error_after = cost_model_error(metrics, tuned)
            records.append(
                {
                    "experiment": "feedback",
                    "engine": metrics.engine,
                    "rows": rows,
                    "density": density,
                    "density_label": density_label(density),
                    "operators": len(metrics.records),
                    "execution_seconds": metrics.total_seconds,
                    "cost_error_before": error_before,
                    "cost_error_after": error_after,
                    "max_cardinality_q_error": metrics.max_cardinality_error(),
                    "observed_cardinalities": len(
                        catalog_for(engine).observed_cardinalities
                    ),
                }
            )
    return records


# --------------------------------------------------------------------------- #
# Cost-constant calibration (microbenchmark-fitted CostModels)
# --------------------------------------------------------------------------- #


def run_calibration_experiment(
    engines: Sequence[str] = ("database", "wsd", "uwsdt"),
    smoke: bool = True,
    repeats: int = 2,
) -> List[Dict[str, Any]]:
    """Fit the cost constants and return one record per engine.

    A thin harness wrapper over :func:`repro.core.planner.calibrate.calibrate`
    so the fitted constants land in the same record format as every other
    experiment (and can be tabulated with :func:`format_records`).
    """
    profile = calibrate(engines=engines, smoke=smoke, repeats=repeats)
    records: List[Dict[str, Any]] = []
    for engine_name, model in profile.models.items():
        record: Dict[str, Any] = {
            "experiment": "calibration",
            "engine": engine_name,
            "source": model.source,
        }
        record.update(model.constants())
        records.append(record)
    return records


# --------------------------------------------------------------------------- #
# Representation-size comparison (introduction / Section 3 expressiveness claims)
# --------------------------------------------------------------------------- #


def run_representation_size_experiment(
    field_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    alternatives: int = 2,
) -> List[Dict[str, Any]]:
    """Compare representation sizes: or-set relation vs WSD vs explicit world-set.

    For ``k`` independent uncertain fields with ``m`` alternatives each, the
    or-set relation and the WSD grow linearly (``k·m`` values) while the
    explicit world-set relation grows as ``m^k`` rows — the ``10^(10^6)``
    explosion of the title, at laptop scale.
    """
    from ..baselines.naive import representation_size
    from ..core.wsd import WSD
    from ..relational.schema import RelationSchema
    from ..worlds.orset import OrSet, OrSetRelation

    records: List[Dict[str, Any]] = []
    for fields in field_counts:
        schema = RelationSchema("R", [f"A{i}" for i in range(fields)])
        orset_relation = OrSetRelation(schema)
        orset_relation.insert(
            tuple(OrSet(list(range(alternatives))) for _ in range(fields))
        )
        wsd = WSD.from_orset_relation(orset_relation)
        worldset = orset_relation.to_worldset(max_worlds=None)
        records.append(
            {
                "experiment": "representation_size",
                "uncertain_fields": fields,
                "alternatives": alternatives,
                "worlds": orset_relation.world_count(),
                "orset_values": orset_relation.representation_size(),
                "wsd_values": wsd.representation_size(),
                "worldset_relation_values": representation_size(worldset),
            }
        )
    return records


# --------------------------------------------------------------------------- #
# Formatting helpers
# --------------------------------------------------------------------------- #


def format_records(records: Iterable[Dict[str, Any]], columns: Sequence[str]) -> str:
    """Render experiment records as a fixed-width text table."""
    rows = [[_format_cell(record.get(column)) for column in columns] for record in records]
    widths = [
        max(len(columns[i]), *(len(row[i]) for row in rows)) if rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [
        " | ".join(columns[i].ljust(widths[i]) for i in range(len(columns))),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in rows
    )
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
