"""Query processing directly on or-set relations — and where it breaks down.

Or-set relations are the paper's motivating "weak" representation system:
they can encode attribute-level alternatives but no correlations between
fields.  This module implements the operations that *are* possible on
or-sets (certain-value selection, projection) and exposes the closure
failure the introduction demonstrates: the result of data cleaning with a
key constraint (or of a join selection) is in general not an or-set
relation, which :func:`is_representable_as_orsets` makes checkable.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..relational.predicates import AttrConst, Predicate
from ..relational.schema import RelationSchema
from ..worlds.orset import OrSet, OrSetRelation, is_or_set
from ..worlds.worldset import WorldSet


def select_constant(orset_relation: OrSetRelation, predicate: AttrConst) -> OrSetRelation:
    """Selection ``σ_{Aθc}`` on an or-set relation.

    Keeps a tuple when at least one candidate value satisfies the condition
    and prunes the candidate values that do not; tuples whose presence
    becomes world-dependent in a *correlated* way (i.e. the result relation
    would need to drop the tuple in some worlds but the or-set formalism
    cannot express a missing tuple) are approximated by keeping only the
    satisfying candidates.  This is precisely the information loss that
    makes or-sets a weak representation system; the exact semantics is
    available through :meth:`repro.worlds.orset.OrSetRelation.to_worldset`.
    """
    result = OrSetRelation(orset_relation.schema)
    attribute_position = orset_relation.schema.position(predicate.attribute)
    for row in orset_relation.rows:
        value = row[attribute_position]
        if is_or_set(value):
            satisfying = [v for v in value.values if predicate.evaluate(
                RelationSchema("single", (predicate.attribute,)), (v,)
            )]
            if not satisfying:
                continue
            new_value: Any = satisfying[0] if len(satisfying) == 1 else OrSet(satisfying)
            new_row = list(row)
            new_row[attribute_position] = new_value
            result.insert(tuple(new_row))
        else:
            if predicate.evaluate(RelationSchema("single", (predicate.attribute,)), (value,)):
                result.insert(row)
    return result


def project(orset_relation: OrSetRelation, attributes: Sequence[str]) -> OrSetRelation:
    """Projection ``π_U`` on an or-set relation (no duplicate elimination across tuples)."""
    positions = orset_relation.schema.positions(attributes)
    result = OrSetRelation(orset_relation.schema.project(attributes))
    for row in orset_relation.rows:
        result.insert(tuple(row[p] for p in positions))
    return result


def is_representable_as_orsets(
    worldset: WorldSet, relation_name: str, search_limit: int = 1_000_000
) -> bool:
    """Decide whether a world-set equals the expansion of *some* or-set relation.

    The decision procedure is an exhaustive search suited to the small
    instances used in tests and examples (the introduction's 24-world census
    example): every possible tuple is assigned to one of the ``n`` tuple
    slots of a hypothetical or-set relation (``n`` being the common world
    cardinality), the per-slot per-attribute candidate sets are collected,
    and the expansion of the candidate or-set relation is compared with the
    world-set.  The world-set is representable iff some assignment matches.

    Raises ``RepresentationError`` when the search space exceeds
    ``search_limit`` assignments — the procedure is meant as an oracle for
    expressiveness claims, not as a scalable algorithm (the paper proves the
    negative case for the census example by a counting argument).
    """
    from ..relational.errors import RepresentationError

    worlds = [
        frozenset(world.database.relation(relation_name).rows) for world in worldset
    ]
    if not worlds:
        return True
    cardinality = len(next(iter(worlds)))
    if any(len(world) != cardinality for world in worlds):
        return False
    if cardinality == 0:
        return True
    observed = set(worlds)
    possible_tuples = sorted({row for world in worlds for row in world}, key=repr)
    arity = len(possible_tuples[0])

    assignments = cardinality ** len(possible_tuples)
    if assignments > search_limit:
        raise RepresentationError(
            f"or-set representability search space too large ({assignments} assignments)"
        )

    for assignment in itertools.product(range(cardinality), repeat=len(possible_tuples)):
        slots: List[List[Tuple[Any, ...]]] = [[] for _ in range(cardinality)]
        for row, slot in zip(possible_tuples, assignment):
            slots[slot].append(row)
        if any(not slot for slot in slots):
            continue
        # Every world must take exactly one tuple from every slot.
        if not all(
            all(sum(1 for row in world if row in slot_rows) == 1 for slot_rows in slots)
            for world in worlds
        ):
            continue
        candidate_sets = [
            [sorted({row[position] for row in slot_rows}, key=repr) for position in range(arity)]
            for slot_rows in slots
        ]
        expansion_size = 1
        for slot_candidates in candidate_sets:
            for values in slot_candidates:
                expansion_size *= len(values)
        if expansion_size != len(observed):
            continue
        expansion = set()
        for combination in itertools.product(
            *[itertools.product(*slot_candidates) for slot_candidates in candidate_sets]
        ):
            expansion.add(frozenset(combination))
        if expansion == observed:
            return True
    return False


def orset_representation_size(orset_relation: OrSetRelation) -> int:
    """Number of stored values (the linear size the paper compares against)."""
    return orset_relation.representation_size()
