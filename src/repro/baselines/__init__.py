"""Baseline engines and correctness oracles.

* :mod:`repro.baselines.naive`        — explicit per-world evaluation (oracle).
* :mod:`repro.baselines.orset_engine` — queries on or-set relations and the
  representability check motivating WSDs.
* :mod:`repro.baselines.extensional`  — extensional evaluation on
  tuple-independent probabilistic databases (Dalvi–Suciu style).
"""

from . import extensional, naive, orset_engine

__all__ = ["extensional", "naive", "orset_engine"]
