"""The naive possible-worlds engine: iterate over every world explicitly.

This is the baseline the paper argues is infeasible at scale ("we consider
it infeasible to iterate over all worlds in secondary storage"), but it is
the perfect *correctness oracle*: query evaluation, data cleaning and
confidence computation all have a one-line definition over explicit worlds.
Every WSD/UWSDT algorithm in :mod:`repro.core` is tested against this
engine on small instances, and the representation-size benchmark uses it to
demonstrate the exponential gap.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..core.algebra.query import Query, evaluate_on_database
from ..core.chase import Dependency, EqualityGeneratingDependency, FunctionalDependency
from ..relational.database import Database
from ..relational.errors import InconsistentWorldSetError
from ..relational.relation import Relation
from ..worlds.worldset import WorldSet


def evaluate_query(worldset: WorldSet, query: Query, result_name: str = "result") -> WorldSet:
    """Evaluate ``query`` in every world; each world is extended by the result."""

    def transform(database: Database) -> Database:
        extended = database.copy()
        extended.replace(evaluate_on_database(query, database, result_name))
        return extended

    return worldset.map(transform)


def query_answer_worlds(worldset: WorldSet, query: Query, result_name: str = "result") -> WorldSet:
    """Like :func:`evaluate_query` but keep only the result relation in each world."""

    def transform(database: Database) -> Database:
        return Database([evaluate_on_database(query, database, result_name)])

    return worldset.map(transform)


def _database_satisfies(database: Database, dependency: Dependency) -> bool:
    relation = database.relation(dependency.relation)
    attributes = relation.schema.attributes
    if isinstance(dependency, EqualityGeneratingDependency):
        for row in relation:
            values = dict(zip(attributes, row))
            if not dependency.holds_for(values):
                return False
        return True
    if isinstance(dependency, FunctionalDependency):
        rows = list(relation)
        for i, first in enumerate(rows):
            left = dict(zip(attributes, first))
            for second in rows[i + 1 :]:
                right = dict(zip(attributes, second))
                if not dependency.holds_for(left, right) or not dependency.holds_for(right, left):
                    return False
        return True
    raise TypeError(f"unsupported dependency {dependency!r}")


def clean(worldset: WorldSet, dependencies: Iterable[Dependency]) -> WorldSet:
    """Remove the worlds violating any dependency, renormalizing probabilities.

    Raises :class:`InconsistentWorldSetError` if no world survives — matching
    the behaviour of the chase (Figure 24).
    """
    dependencies = list(dependencies)

    def keep(database: Database) -> bool:
        return all(_database_satisfies(database, dependency) for dependency in dependencies)

    cleaned = worldset.filter(keep, renormalize=True)
    if len(cleaned) == 0:
        raise InconsistentWorldSetError("World-set is inconsistent.")
    return cleaned


def tuple_confidence(worldset: WorldSet, relation_name: str, values: Sequence[Any]) -> float:
    """Probability that ``values`` appears in ``relation_name`` (sums world probabilities)."""
    return worldset.tuple_confidence(relation_name, tuple(values))


def possible_tuples(worldset: WorldSet, relation_name: str) -> set:
    """Tuples appearing in at least one world."""
    return worldset.possible_tuples(relation_name)


def certain_tuples(worldset: WorldSet, relation_name: str) -> set:
    """Tuples appearing in every world."""
    return worldset.certain_tuples(relation_name)


def possible_with_confidence(
    worldset: WorldSet, relation_name: str
) -> List[Tuple[Tuple[Any, ...], float]]:
    """Possible tuples with their confidences (the oracle for Figure 19)."""
    return [
        (row, worldset.tuple_confidence(relation_name, row))
        for row in sorted(worldset.possible_tuples(relation_name), key=repr)
    ]


def representation_size(worldset: WorldSet) -> int:
    """Total number of field values needed to store the worlds explicitly.

    This is the size of the world-set relation (one row per world), the
    quantity the paper's introduction shows exploding to ``10^10`` columns
    times ``2^(10^6)`` rows for the full census.
    """
    total = 0
    for world in worldset:
        for relation in world.database:
            total += len(relation) * relation.schema.arity
    return total
