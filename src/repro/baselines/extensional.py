"""Extensional query evaluation on tuple-independent probabilistic databases.

The paper contrasts WSDs with the probabilistic databases of Dalvi & Suciu,
where query evaluation computes per-tuple output probabilities directly
("probabilistic-ranked retrieval") rather than a representation of the
answer world-set.  This module implements the standard extensional rules
for safe operator trees (independent-project, independent-join, selection)
so that the baseline's behaviour — and its limits — can be demonstrated and
tested against the exact semantics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..relational.predicates import Predicate
from ..relational.schema import RelationSchema
from ..worlds.tuple_independent import TupleIndependentDatabase, TupleIndependentRelation

#: A ranked answer: tuple values with their marginal probability.
RankedAnswer = Tuple[Tuple[Any, ...], float]


def select(
    relation: TupleIndependentRelation, predicate: Predicate
) -> TupleIndependentRelation:
    """Selection: keep the satisfying tuples with unchanged probabilities."""
    result = TupleIndependentRelation(relation.schema)
    for item in relation:
        if predicate.evaluate(relation.schema, item.values):
            result.insert(item.values, item.probability)
    return result


def project_independent(
    relation: TupleIndependentRelation, attributes: Sequence[str], name: str = "result"
) -> List[RankedAnswer]:
    """Independent projection: ``P(t) = 1 − Π (1 − p_i)`` over merged input tuples.

    This is the extensional rule that is *exact* only when the merged tuples
    are independent — which holds in a tuple-independent database but not,
    in general, for intermediate results.  The exactness on base relations
    is covered by tests against the naive engine.
    """
    positions = relation.schema.positions(attributes)
    absent: Dict[Tuple[Any, ...], float] = {}
    order: List[Tuple[Any, ...]] = []
    for item in relation:
        key = tuple(item.values[p] for p in positions)
        if key not in absent:
            absent[key] = 1.0
            order.append(key)
        absent[key] *= 1.0 - item.probability
    return [(key, 1.0 - absent[key]) for key in order]


def join_independent(
    left: TupleIndependentRelation,
    right: TupleIndependentRelation,
    left_attr: str,
    right_attr: str,
) -> List[RankedAnswer]:
    """Independent join: ``P(t1 ⋈ t2) = p1 · p2`` (exact for distinct base relations)."""
    left_position = left.schema.position(left_attr)
    right_position = right.schema.position(right_attr)
    index: Dict[Any, List] = {}
    for item in right:
        index.setdefault(item.values[right_position], []).append(item)
    answers: List[RankedAnswer] = []
    for left_item in left:
        for right_item in index.get(left_item.values[left_position], ()):
            answers.append(
                (left_item.values + right_item.values, left_item.probability * right_item.probability)
            )
    return answers


def tuple_probability(database: TupleIndependentDatabase, relation_name: str, values: Sequence[Any]) -> float:
    """Marginal probability of one base tuple."""
    return database.tuple_confidence(relation_name, values)
