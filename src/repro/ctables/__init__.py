"""v-tables and c-tables (Imielinski & Lipski 1984).

The classical strong representation system the paper builds on: WSDTs "can
be naturally viewed as c-tables where the body corresponds to the template
relation and whose formulas have been put into a normal form represented by
the component relations" (Section 1).  This subpackage implements v-tables,
c-tables with global conditions, their possible-worlds semantics, and the
WSDT → c-table conversion of that remark.
"""

from .ctable import CTable, Conjunction, Disjunction, Equality, Formula, TrueFormula, VTable, Variable
from .convert import wsdt_to_ctable

__all__ = [
    "CTable",
    "Conjunction",
    "Disjunction",
    "Equality",
    "Formula",
    "TrueFormula",
    "VTable",
    "Variable",
    "wsdt_to_ctable",
]
