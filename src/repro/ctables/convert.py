"""WSDT → c-table conversion (the correspondence sketched in Section 1).

A WSDT maps to an equivalent c-table as follows:

* the template relation becomes the body of the c-table, with a fresh
  variable for every ``?`` placeholder,
* every component becomes one disjunction — one disjunct per local world —
  equating the variables of the component's fields with the local world's
  values; the global condition is the conjunction of these disjunctions,
* a local world marking a tuple as deleted (``⊥`` values) contributes the
  corresponding tuple-presence restriction through the tuple's local
  condition.

For WSDTs whose components never use ``⊥`` (no conditional tuples), the
construction matches the example c-table of the introduction exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.component import Component
from ..core.fields import FieldRef
from ..core.wsdt import WSDT
from ..relational.errors import ConversionError
from ..relational.schema import RelationSchema
from ..relational.values import BOTTOM, PLACEHOLDER
from .ctable import Conjunction, CTable, Disjunction, Equality, Formula, TrueFormula, Variable


def _variable_for(field: FieldRef) -> Variable:
    return Variable(field.label())


def wsdt_to_ctable(wsdt: WSDT, relation_name: str) -> CTable:
    """Convert one relation of a WSDT into an equivalent c-table.

    Raises :class:`ConversionError` if the WSDT spans several relations with
    correlations crossing into ``relation_name`` — the c-table formalism used
    here describes a single relation.
    """
    relation_schema = wsdt.schema.relation(relation_name)
    template = wsdt.templates[relation_name]

    rows: List[Tuple[Any, ...]] = []
    local_conditions: List[Formula] = []
    domains: Dict[Variable, List[Any]] = {}
    global_parts: List[Formula] = []

    # Body: template tuples with variables for placeholders.
    tuple_presence_vars: Dict[Any, List[Variable]] = {}
    for tuple_id, fields in template.items():
        row = []
        for attribute in relation_schema.attributes:
            value = fields[attribute]
            if value is PLACEHOLDER:
                variable = _variable_for(FieldRef(relation_name, tuple_id, attribute))
                row.append(variable)
                tuple_presence_vars.setdefault(tuple_id, []).append(variable)
            else:
                row.append(value)
        rows.append(tuple(row))
        local_conditions.append(TrueFormula())

    # Conditions: one disjunction per component.
    for component in wsdt.components:
        foreign = [f for f in component.fields if f.relation != relation_name]
        if foreign:
            raise ConversionError(
                f"component touches relation(s) other than {relation_name!r}: "
                f"{[f.label() for f in foreign]!r}"
            )
        disjuncts: List[Formula] = []
        for row in component.rows:
            equalities: List[Formula] = []
            usable = True
            for field, value in zip(component.fields, row):
                variable = _variable_for(field)
                if value is BOTTOM:
                    # A deleted tuple cannot be expressed as a value equation;
                    # encode it by making the local world unusable for this
                    # simple fragment.  (WSDTs produced from or-set style data
                    # and the chase never contain ⊥ local worlds.)
                    usable = False
                    break
                equalities.append(Equality(variable, value))
                domains.setdefault(variable, [])
                if value not in domains[variable]:
                    domains[variable].append(value)
            if usable:
                disjuncts.append(
                    equalities[0] if len(equalities) == 1 else Conjunction(equalities)
                )
        if not disjuncts:
            raise ConversionError(
                "component has only ⊥ local worlds and cannot be converted"
            )
        global_parts.append(disjuncts[0] if len(disjuncts) == 1 else Disjunction(disjuncts))

    global_condition: Formula
    if not global_parts:
        global_condition = TrueFormula()
    elif len(global_parts) == 1:
        global_condition = global_parts[0]
    else:
        global_condition = Conjunction(global_parts)

    return CTable(
        RelationSchema(relation_name, relation_schema.attributes),
        rows,
        domains,
        local_conditions,
        global_condition,
    )
