"""v-tables and c-tables with their possible-worlds semantics.

A *v-table* is a relation whose fields may contain variables; every valuation
of the variables (over given finite variable domains) yields a possible
world.  A *c-table* additionally attaches a local condition to every tuple
and a global condition to the table: a tuple belongs to the world of a
valuation iff the valuation satisfies both the global condition and the
tuple's local condition.

The formula language implemented here is the fragment the paper needs for
the WSDT correspondence: equalities between a variable and a constant (or
another variable), conjunction and disjunction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..worlds.worldset import WorldSet


class Variable:
    """A named variable occurring in a v-table or c-table."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"?{self.name}"


def is_variable(value: Any) -> bool:
    return isinstance(value, Variable)


# --------------------------------------------------------------------------- #
# Conditions
# --------------------------------------------------------------------------- #


class Formula:
    """Base class of c-table conditions."""

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        raise NotImplementedError

    def variables(self) -> Set[Variable]:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Conjunction":
        return Conjunction([self, other])

    def __or__(self, other: "Formula") -> "Disjunction":
        return Disjunction([self, other])


class TrueFormula(Formula):
    """The always-true condition."""

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        return True

    def variables(self) -> Set[Variable]:
        return set()

    def __repr__(self) -> str:
        return "TRUE"


class Equality(Formula):
    """An equality ``x = value`` or ``x = y`` (or the corresponding inequality)."""

    def __init__(self, left: Variable, right: Any, negated: bool = False) -> None:
        self.left = left
        self.right = right
        self.negated = negated

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        left_value = valuation[self.left]
        right_value = valuation[self.right] if is_variable(self.right) else self.right
        return (left_value != right_value) if self.negated else (left_value == right_value)

    def variables(self) -> Set[Variable]:
        result = {self.left}
        if is_variable(self.right):
            result.add(self.right)
        return result

    def __repr__(self) -> str:
        op = "≠" if self.negated else "="
        return f"({self.left!r} {op} {self.right!r})"


class Conjunction(Formula):
    """A conjunction of conditions."""

    def __init__(self, parts: Sequence[Formula]) -> None:
        self.parts = list(parts)

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        return all(part.evaluate(valuation) for part in self.parts)

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for part in self.parts:
            result |= part.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


class Disjunction(Formula):
    """A disjunction of conditions."""

    def __init__(self, parts: Sequence[Formula]) -> None:
        self.parts = list(parts)

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        return any(part.evaluate(valuation) for part in self.parts)

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for part in self.parts:
            result |= part.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


# --------------------------------------------------------------------------- #
# v-tables
# --------------------------------------------------------------------------- #


class VTable:
    """A v-table: a relation whose fields may be variables.

    ``domains`` gives the finite set of values each variable ranges over,
    keeping the semantics a *finite* set of worlds as assumed by the paper.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        domains: Optional[Mapping[Variable, Sequence[Any]]] = None,
    ) -> None:
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        self.domains: Dict[Variable, List[Any]] = {
            variable: list(values) for variable, values in (domains or {}).items()
        }

    def variables(self) -> Set[Variable]:
        found: Set[Variable] = set()
        for row in self.rows:
            for value in row:
                if is_variable(value):
                    found.add(value)
        return found

    def _check_domains(self) -> None:
        missing = [v for v in self.variables() if v not in self.domains]
        if missing:
            raise RepresentationError(
                f"variables without a domain: {[v.name for v in missing]!r}"
            )

    def valuations(self) -> Iterable[Dict[Variable, Any]]:
        """All valuations of the variables over their domains."""
        self._check_domains()
        variables = sorted(self.variables(), key=lambda v: v.name)
        if not variables:
            yield {}
            return
        for combination in itertools.product(*[self.domains[v] for v in variables]):
            yield dict(zip(variables, combination))

    def instantiate(self, valuation: Mapping[Variable, Any]) -> Relation:
        """The relation obtained under one valuation."""
        relation = Relation(self.schema)
        for row in self.rows:
            relation.insert(
                tuple(valuation[value] if is_variable(value) else value for value in row)
            )
        return relation

    def to_worldset(self) -> WorldSet:
        """All possible worlds of the v-table."""
        result = WorldSet()
        for valuation in self.valuations():
            result.add(Database([self.instantiate(valuation)]))
        return result

    def __repr__(self) -> str:
        return f"VTable({self.schema.name!r}, {len(self.rows)} rows, {len(self.variables())} variables)"


# --------------------------------------------------------------------------- #
# c-tables
# --------------------------------------------------------------------------- #


class CTable(VTable):
    """A c-table: a v-table with per-tuple local conditions and a global condition."""

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        domains: Optional[Mapping[Variable, Sequence[Any]]] = None,
        local_conditions: Optional[Sequence[Formula]] = None,
        global_condition: Optional[Formula] = None,
    ) -> None:
        super().__init__(schema, rows, domains)
        if local_conditions is None:
            local_conditions = [TrueFormula() for _ in self.rows]
        if len(local_conditions) != len(self.rows):
            raise RepresentationError("local conditions must parallel the rows")
        self.local_conditions: List[Formula] = list(local_conditions)
        self.global_condition: Formula = global_condition or TrueFormula()

    def variables(self) -> Set[Variable]:
        found = super().variables()
        found |= self.global_condition.variables()
        for condition in self.local_conditions:
            found |= condition.variables()
        return found

    def instantiate(self, valuation: Mapping[Variable, Any]) -> Relation:
        relation = Relation(self.schema)
        for row, condition in zip(self.rows, self.local_conditions):
            if not condition.evaluate(valuation):
                continue
            relation.insert(
                tuple(valuation[value] if is_variable(value) else value for value in row)
            )
        return relation

    def to_worldset(self) -> WorldSet:
        """All possible worlds: valuations satisfying the global condition."""
        result = WorldSet()
        for valuation in self.valuations():
            if not self.global_condition.evaluate(valuation):
                continue
            result.add(Database([self.instantiate(valuation)]))
        if len(result) == 0:
            raise RepresentationError("c-table has an unsatisfiable global condition")
        return result

    def __repr__(self) -> str:
        return (
            f"CTable({self.schema.name!r}, {len(self.rows)} rows, "
            f"{len(self.variables())} variables)"
        )
