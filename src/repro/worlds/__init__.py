"""Possible-worlds layer: explicit world-sets and the classical representation systems.

Contains the *semantic* objects (finite sets of possible worlds) and the two
pre-existing practical formalisms the paper compares against — or-set
relations and tuple-independent probabilistic databases — plus the formal
world-set relation (``inline`` / ``inline⁻¹``) that WSDs decompose.
"""

from .orset import OrSet, OrSetRelation, is_or_set
from .tuple_independent import (
    ProbabilisticTuple,
    TupleIndependentDatabase,
    TupleIndependentRelation,
)
from .worldset import PossibleWorld, WorldSet
from .worldset_relation import WorldSetRelation, inline, inline_inverse

__all__ = [
    "OrSet",
    "OrSetRelation",
    "is_or_set",
    "ProbabilisticTuple",
    "TupleIndependentDatabase",
    "TupleIndependentRelation",
    "PossibleWorld",
    "WorldSet",
    "WorldSetRelation",
    "inline",
    "inline_inverse",
]
