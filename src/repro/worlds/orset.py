"""Or-set relations (Imielinski, Naqvi, Vadaparty 1991) — the paper's intro formalism.

An or-set relation is a relation whose fields may hold an *or-set*: a finite
set of mutually exclusive candidate values, one of which is the true value.
Each combination of choices yields a possible world.  Or-set relations cannot
express correlations between fields — the motivating limitation in Section 1
(the cleaned census data with a key constraint is not representable).

Or-set relations convert *linearly* into WSDs (one component per uncertain
field), which is one of the expressiveness claims reproduced by
``benchmarks/bench_representation_size.py``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .worldset import WorldSet


class OrSet:
    """A finite set of mutually exclusive candidate values for one field."""

    __slots__ = ("values", "probabilities")

    def __init__(
        self, values: Sequence[Any], probabilities: Optional[Sequence[float]] = None
    ) -> None:
        values = list(values)
        if not values:
            raise RepresentationError("an or-set must contain at least one value")
        if len(set(values)) != len(values):
            raise RepresentationError(f"or-set values must be distinct, got {values!r}")
        if probabilities is not None:
            probabilities = list(probabilities)
            if len(probabilities) != len(values):
                raise RepresentationError("or-set probabilities must parallel its values")
            total = sum(probabilities)
            if abs(total - 1.0) > 1e-6:
                raise RepresentationError(f"or-set probabilities sum to {total}, expected 1")
        self.values = values
        self.probabilities = probabilities

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrSet):
            return NotImplemented
        return self.values == other.values and self.probabilities == other.probabilities

    def __repr__(self) -> str:
        return f"OrSet({self.values!r})"


def is_or_set(value: Any) -> bool:
    """Return True iff ``value`` is an or-set (and not a plain domain value)."""
    return isinstance(value, OrSet)


class OrSetRelation:
    """A relation whose fields are either certain values or :class:`OrSet` objects."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = []
        for row in rows:
            self.insert(row)

    @classmethod
    def from_dicts(
        cls, name: str, attributes: Sequence[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "OrSetRelation":
        """Build an or-set relation from dictionaries keyed by attribute name."""
        relation = cls(RelationSchema(name, attributes))
        for record in dicts:
            relation.insert(tuple(record[a] for a in attributes))
        return relation

    def insert(self, row: Sequence[Any]) -> None:
        values = tuple(row)
        if len(values) != self.schema.arity:
            raise RepresentationError(
                f"or-set row {values!r} has arity {len(values)}, expected {self.schema.arity}"
            )
        self.rows.append(values)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def uncertain_fields(self) -> List[Tuple[int, str]]:
        """Return ``(row index, attribute)`` pairs whose field holds an or-set."""
        uncertain = []
        for row_index, row in enumerate(self.rows):
            for attribute, value in zip(self.schema.attributes, row):
                if is_or_set(value):
                    uncertain.append((row_index, attribute))
        return uncertain

    def world_count(self) -> int:
        """Number of possible worlds (product of or-set sizes)."""
        count = 1
        for row in self.rows:
            for value in row:
                if is_or_set(value):
                    count *= len(value)
        return count

    def representation_size(self) -> int:
        """Total number of stored values (certain fields count 1, or-sets their size)."""
        size = 0
        for row in self.rows:
            for value in row:
                size += len(value) if is_or_set(value) else 1
        return size

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def to_worldset(self, max_worlds: Optional[int] = 1_000_000) -> WorldSet:
        """Expand into the explicit set of possible worlds.

        Guards against combinatorial explosion via ``max_worlds`` (pass
        ``None`` to disable the guard).
        """
        count = self.world_count()
        if max_worlds is not None and count > max_worlds:
            raise RepresentationError(
                f"or-set relation represents {count} worlds, refusing to expand more than {max_worlds}"
            )
        probabilistic = self._is_probabilistic()
        field_choices: List[List[Tuple[int, str, Any, float]]] = []
        for row_index, row in enumerate(self.rows):
            for attribute, value in zip(self.schema.attributes, row):
                if is_or_set(value):
                    probs = value.probabilities or [1.0 / len(value)] * len(value)
                    field_choices.append(
                        [(row_index, attribute, v, p) for v, p in zip(value.values, probs)]
                    )

        result = WorldSet()
        for combination in itertools.product(*field_choices) if field_choices else [()]:
            assignment: Dict[Tuple[int, str], Any] = {
                (row_index, attribute): chosen
                for row_index, attribute, chosen, _ in combination
            }
            probability = 1.0
            for _, _, _, p in combination:
                probability *= p
            relation = Relation(self.schema)
            for row_index, row in enumerate(self.rows):
                values = []
                for attribute, value in zip(self.schema.attributes, row):
                    if is_or_set(value):
                        values.append(assignment[(row_index, attribute)])
                    else:
                        values.append(value)
                relation.insert(tuple(values))
            result.add(Database([relation]), probability if probabilistic else None)
        return result

    def _is_probabilistic(self) -> bool:
        """True iff at least one or-set carries explicit probabilities."""
        for row in self.rows:
            for value in row:
                if is_or_set(value) and value.probabilities is not None:
                    return True
        return False

    def certain_relation(self, default: Any = None) -> Relation:
        """Return a plain relation where each or-set field is replaced by ``default``.

        Useful for sizing comparisons ("one world" baseline).
        """
        relation = Relation(self.schema)
        for row in self.rows:
            relation.insert(
                tuple(default if is_or_set(value) else value for value in row)
            )
        return relation

    def __repr__(self) -> str:
        return (
            f"OrSetRelation({self.schema.name!r}, {len(self.rows)} rows, "
            f"{len(self.uncertain_fields())} uncertain fields)"
        )
