"""Explicit finite sets of possible worlds.

A :class:`WorldSet` is the *semantic* object of the paper: a finite set of
databases over a common schema, optionally weighted by probabilities.  All
representation systems in this package (world-set relations, or-set
relations, tuple-independent databases, WSDs, WSDTs, UWSDTs) come with a
``to_worldset``/``rep`` method producing one of these, which is how tests
check that transformations preserve semantics.

Explicit world-sets are only feasible for small examples — which is exactly
the paper's point — so this class is used as the correctness oracle and as
the naive baseline, never as the production representation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError

#: Tolerance used when checking that probabilities sum to one.
PROBABILITY_TOLERANCE = 1e-9


class PossibleWorld:
    """One possible world: a database plus an optional probability."""

    __slots__ = ("database", "probability")

    def __init__(self, database: Database, probability: Optional[float] = None) -> None:
        if probability is not None and (probability < -PROBABILITY_TOLERANCE or probability > 1 + PROBABILITY_TOLERANCE):
            raise RepresentationError(f"world probability {probability} outside [0, 1]")
        self.database = database
        self.probability = probability

    def __repr__(self) -> str:
        if self.probability is None:
            return f"PossibleWorld({self.database!r})"
        return f"PossibleWorld({self.database!r}, p={self.probability:.6g})"


class WorldSet:
    """A finite set of possible worlds over a common schema.

    Duplicate databases are merged; their probabilities (if any) are summed.
    This mirrors the paper's semantics where a world-set is a *set* of
    databases, and the probability of a database is the total mass of the
    component combinations producing it.
    """

    __slots__ = ("_worlds", "_order")

    def __init__(self, worlds: Iterable[PossibleWorld] = ()) -> None:
        self._worlds: Dict[tuple, PossibleWorld] = {}
        self._order: List[tuple] = []
        for world in worlds:
            self.add(world.database, world.probability)

    @classmethod
    def from_databases(
        cls, databases: Iterable[Database], probabilities: Optional[Sequence[float]] = None
    ) -> "WorldSet":
        """Build a world-set from databases and an optional parallel list of probabilities."""
        databases = list(databases)
        if probabilities is None:
            return cls(PossibleWorld(db) for db in databases)
        if len(probabilities) != len(databases):
            raise RepresentationError(
                f"got {len(databases)} databases but {len(probabilities)} probabilities"
            )
        return cls(PossibleWorld(db, p) for db, p in zip(databases, probabilities))

    def add(self, database: Database, probability: Optional[float] = None) -> None:
        """Add one world, merging with an identical existing world."""
        key = database.canonical_form()
        existing = self._worlds.get(key)
        if existing is None:
            if self._worlds:
                sample = next(iter(self._worlds.values()))
                if (sample.probability is None) != (probability is None):
                    raise RepresentationError(
                        "cannot mix probabilistic and non-probabilistic worlds in one world-set"
                    )
            self._worlds[key] = PossibleWorld(database, probability)
            self._order.append(key)
            return
        if existing.probability is None and probability is None:
            return
        if existing.probability is None or probability is None:
            raise RepresentationError(
                "cannot mix probabilistic and non-probabilistic worlds in one world-set"
            )
        self._worlds[key] = PossibleWorld(existing.database, existing.probability + probability)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._worlds)

    def __iter__(self) -> Iterator[PossibleWorld]:
        return (self._worlds[key] for key in self._order)

    @property
    def databases(self) -> List[Database]:
        return [world.database for world in self]

    @property
    def is_probabilistic(self) -> bool:
        """True iff every world carries a probability."""
        return all(world.probability is not None for world in self) and len(self) > 0

    def total_probability(self) -> float:
        """Sum of world probabilities (should be ~1 for a valid distribution)."""
        return sum(world.probability or 0.0 for world in self)

    def validate_probabilities(self) -> None:
        """Raise unless probabilities are present and sum to one (within tolerance)."""
        if not self.is_probabilistic:
            raise RepresentationError("world-set is not probabilistic")
        total = self.total_probability()
        if abs(total - 1.0) > 1e-6:
            raise RepresentationError(f"world probabilities sum to {total}, expected 1")

    def probability_of(self, database: Database) -> float:
        """Return the probability mass of ``database`` (0 if absent)."""
        world = self._worlds.get(database.canonical_form())
        if world is None:
            return 0.0
        return world.probability if world.probability is not None else 0.0

    def contains(self, database: Database) -> bool:
        """Return True iff ``database`` is one of the possible worlds."""
        return database.canonical_form() in self._worlds

    # ------------------------------------------------------------------ #
    # Queries across worlds
    # ------------------------------------------------------------------ #

    def map(self, transform: Callable[[Database], Database]) -> "WorldSet":
        """Apply ``transform`` to each world (the paper's per-world query semantics)."""
        result = WorldSet()
        for world in self:
            result.add(transform(world.database), world.probability)
        return result

    def filter(self, keep: Callable[[Database], bool], renormalize: bool = False) -> "WorldSet":
        """Keep only worlds satisfying ``keep``; optionally renormalize probabilities.

        With ``renormalize=True`` this is exactly the semantics of chasing
        integrity constraints: surviving worlds are reweighted by the total
        surviving mass.
        """
        kept = [(world.database, world.probability) for world in self if keep(world.database)]
        result = WorldSet()
        if renormalize and kept and all(p is not None for _, p in kept):
            mass = sum(p for _, p in kept)  # type: ignore[misc]
            if mass <= 0:
                return result
            for database, probability in kept:
                result.add(database, probability / mass)  # type: ignore[operator]
            return result
        for database, probability in kept:
            result.add(database, probability)
        return result

    def possible_tuples(self, relation_name: str) -> set:
        """All tuples appearing in relation ``relation_name`` in at least one world."""
        tuples = set()
        for world in self:
            if world.database.has_relation(relation_name):
                tuples.update(world.database.relation(relation_name).rows)
        return tuples

    def certain_tuples(self, relation_name: str) -> set:
        """Tuples appearing in relation ``relation_name`` in *every* world."""
        result: Optional[set] = None
        for world in self:
            if not world.database.has_relation(relation_name):
                return set()
            rows = set(world.database.relation(relation_name).rows)
            result = rows if result is None else (result & rows)
        return result or set()

    def tuple_confidence(self, relation_name: str, row: Tuple) -> float:
        """Probability that ``row`` appears in ``relation_name`` (paper, Section 6)."""
        confidence = 0.0
        for world in self:
            if world.probability is None:
                raise RepresentationError("tuple confidence requires a probabilistic world-set")
            if world.database.has_relation(relation_name) and row in world.database.relation(
                relation_name
            ):
                confidence += world.probability
        return confidence

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #

    def same_worlds(self, other: "WorldSet") -> bool:
        """True iff both world-sets contain exactly the same databases (ignoring probabilities)."""
        return set(self._worlds) == set(other._worlds)

    def same_distribution(self, other: "WorldSet", tolerance: float = 1e-6) -> bool:
        """True iff both world-sets assign (approximately) the same probability to every world."""
        if set(self._worlds) != set(other._worlds):
            return False
        for key, world in self._worlds.items():
            other_world = other._worlds[key]
            p_self = world.probability if world.probability is not None else 1.0
            p_other = other_world.probability if other_world.probability is not None else 1.0
            if abs(p_self - p_other) > tolerance:
                return False
        return True

    def __repr__(self) -> str:
        return f"WorldSet({len(self)} worlds)"
