"""Tuple-independent probabilistic databases (Dalvi & Suciu 2004).

Each tuple carries a confidence: the probability that the tuple is present.
Tuples are mutually independent, so a possible world is any subset of the
tuples and its probability is the product of "present" / "absent" factors.

This is the baseline representation of Example 5 / Figures 6–7 in the paper:
WSDs strictly generalize it (each tuple becomes a two-local-world component),
which :func:`repro.core.wsd.WSD.from_tuple_independent` implements.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .worldset import WorldSet


class ProbabilisticTuple:
    """A tuple together with the probability of its presence."""

    __slots__ = ("values", "probability")

    def __init__(self, values: Sequence[Any], probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise RepresentationError(f"tuple probability {probability} outside [0, 1]")
        self.values = tuple(values)
        self.probability = probability

    def __repr__(self) -> str:
        return f"ProbabilisticTuple({self.values!r}, p={self.probability:.4g})"


class TupleIndependentRelation:
    """One relation of a tuple-independent probabilistic database."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[ProbabilisticTuple] = ()) -> None:
        self.schema = schema
        self.tuples: List[ProbabilisticTuple] = []
        for item in tuples:
            self.insert(item.values, item.probability)

    def insert(self, values: Sequence[Any], probability: float) -> None:
        values = tuple(values)
        if len(values) != self.schema.arity:
            raise RepresentationError(
                f"tuple {values!r} has arity {len(values)}, expected {self.schema.arity}"
            )
        self.tuples.append(ProbabilisticTuple(values, probability))

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self) -> str:
        return f"TupleIndependentRelation({self.schema.name!r}, {len(self)} tuples)"


class TupleIndependentDatabase:
    """A set of tuple-independent relations."""

    def __init__(self, relations: Iterable[TupleIndependentRelation] = ()) -> None:
        self.relations: Dict[str, TupleIndependentRelation] = {}
        for relation in relations:
            self.add(relation)

    @classmethod
    def from_dicts(
        cls,
        name: str,
        attributes: Sequence[str],
        records: Iterable[Mapping[str, Any]],
        probability_key: str = "P",
    ) -> "TupleIndependentDatabase":
        """Build a single-relation database from dictionaries with a probability column."""
        relation = TupleIndependentRelation(RelationSchema(name, attributes))
        for record in records:
            relation.insert(
                tuple(record[a] for a in attributes), float(record[probability_key])
            )
        return cls([relation])

    def add(self, relation: TupleIndependentRelation) -> None:
        if relation.schema.name in self.relations:
            raise RepresentationError(
                f"relation {relation.schema.name!r} already present in tuple-independent database"
            )
        self.relations[relation.schema.name] = relation

    def relation(self, name: str) -> TupleIndependentRelation:
        return self.relations[name]

    def tuple_count(self) -> int:
        """Total number of (uncertain) tuples across all relations."""
        return sum(len(relation) for relation in self.relations.values())

    def world_count(self) -> int:
        """Number of possible worlds: ``2^n`` for ``n`` uncertain tuples."""
        return 2 ** self.tuple_count()

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def to_worldset(self, max_worlds: Optional[int] = 1_000_000) -> WorldSet:
        """Expand into the explicit set of possible worlds (Figure 6 (b))."""
        count = self.world_count()
        if max_worlds is not None and count > max_worlds:
            raise RepresentationError(
                f"tuple-independent database represents {count} worlds, "
                f"refusing to expand more than {max_worlds}"
            )
        entries: List[Tuple[str, ProbabilisticTuple]] = []
        for name, relation in self.relations.items():
            for item in relation:
                entries.append((name, item))

        result = WorldSet()
        for mask in itertools.product((True, False), repeat=len(entries)):
            probability = 1.0
            database = Database()
            for name, relation in self.relations.items():
                database.add(Relation(relation.schema))
            for include, (name, item) in zip(mask, entries):
                if include:
                    probability *= item.probability
                    database.relation(name).insert(item.values)
                else:
                    probability *= 1.0 - item.probability
            if probability > 0.0:
                result.add(database, probability)
        return result

    def tuple_confidence(self, relation_name: str, values: Sequence[Any]) -> float:
        """Probability that ``values`` is present (max over duplicate entries)."""
        values = tuple(values)
        absent = 1.0
        found = False
        for item in self.relations[relation_name]:
            if item.values == values:
                found = True
                absent *= 1.0 - item.probability
        return 1.0 - absent if found else 0.0

    def __repr__(self) -> str:
        return f"TupleIndependentDatabase({list(self.relations)!r}, {self.tuple_count()} tuples)"
