"""World-set relations: the paper's "one row per world" encoding (Section 3).

Given a finite world-set ``A`` over schema ``Σ``, every world ``A`` is
*inlined* into a single wide tuple by concatenating the tuples of each
relation, padded with ``⊥``-tuples up to the maximum cardinality of that
relation across all worlds.  The set of inlined tuples is the world-set
relation; its (maximal) product decomposition is a WSD.

This representation is exponential in general — the point of the paper —
but is needed as the formal middle step between explicit world-sets and
WSDs, and it gives us a second independent path for testing ``rep``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.values import BOTTOM, contains_bottom
from .worldset import WorldSet

#: A field identifier in the wide schema of a world-set relation:
#: ``(relation name, tuple position, attribute name)``.
WideField = Tuple[str, int, str]


class WorldSetRelation:
    """The world-set relation of a finite world-set.

    Attributes
    ----------
    schema:
        The database schema ``Σ`` of the represented worlds.
    max_cardinality:
        ``|R|max`` per relation name: the maximum number of tuples the
        relation has in any world.
    fields:
        The wide schema, as a tuple of ``(relation, tuple position, attribute)``
        triples, in column order.
    rows:
        One wide tuple per world (plus probabilities when present).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        max_cardinality: Dict[str, int],
        fields: Sequence[WideField],
        rows: Iterable[Tuple[Any, ...]],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        self.schema = schema
        self.max_cardinality = dict(max_cardinality)
        self.fields = tuple(fields)
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.fields):
                raise RepresentationError(
                    f"world-set relation row has {len(row)} fields, expected {len(self.fields)}"
                )
        if probabilities is not None and len(probabilities) != len(self.rows):
            raise RepresentationError("probabilities must parallel the rows")
        self.probabilities = list(probabilities) if probabilities is not None else None

    # ------------------------------------------------------------------ #
    # Construction: inline() over an explicit world-set
    # ------------------------------------------------------------------ #

    @classmethod
    def from_worldset(cls, worldset: WorldSet) -> "WorldSetRelation":
        """Inline every world of ``worldset`` (the paper's ``inline`` function)."""
        worlds = list(worldset)
        if not worlds:
            raise RepresentationError("cannot inline an empty world-set")
        schema = worlds[0].database.schema()
        for world in worlds:
            if world.database.schema() != schema:
                # Relations may be empty in some worlds; recompute a merged schema.
                schema = _merged_schema([w.database for w in worlds])
                break
        max_cardinality = {
            rel.name: max(
                (len(w.database.relation(rel.name)) if w.database.has_relation(rel.name) else 0)
                for w in worlds
            )
            for rel in schema
        }
        fields: List[WideField] = []
        for rel in schema:
            for position in range(max_cardinality[rel.name]):
                for attribute in rel.attributes:
                    fields.append((rel.name, position, attribute))

        rows = []
        for world in worlds:
            rows.append(inline(world.database, schema, max_cardinality))
        probabilities = None
        if worldset.is_probabilistic:
            probabilities = [world.probability for world in worlds]
        return cls(schema, max_cardinality, fields, rows, probabilities)

    # ------------------------------------------------------------------ #
    # Decoding: inline⁻¹
    # ------------------------------------------------------------------ #

    def to_worldset(self) -> WorldSet:
        """Decode every row back into a database (the paper's ``inline⁻¹``)."""
        result = WorldSet()
        for index, row in enumerate(self.rows):
            probability = self.probabilities[index] if self.probabilities is not None else None
            result.add(inline_inverse(row, self.fields, self.schema), probability)
        return result

    def as_relation(self, name: str = "worldset") -> Relation:
        """Materialize the world-set relation as an ordinary wide relation.

        Column names follow the paper's convention ``R.ti.A``.
        """
        attributes = [f"{rel}.t{pos + 1}.{attr}" for rel, pos, attr in self.fields]
        relation = Relation(RelationSchema(name, attributes))
        for row in self.rows:
            relation.insert(row)
        return relation

    @property
    def width(self) -> int:
        """Number of columns of the wide schema."""
        return len(self.fields)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"WorldSetRelation({len(self)} worlds, width {self.width})"


def inline(
    database: Database, schema: DatabaseSchema, max_cardinality: Dict[str, int]
) -> Tuple[Any, ...]:
    """Concatenate all tuples of ``database``, padding with ``⊥`` tuples.

    Tuples are taken in the relation's insertion order, which fixes one of
    the "several different inlinings of the same world-set" the paper allows.
    """
    wide: List[Any] = []
    for rel in schema:
        rows = (
            list(database.relation(rel.name).rows) if database.has_relation(rel.name) else []
        )
        if len(rows) > max_cardinality[rel.name]:
            raise RepresentationError(
                f"relation {rel.name!r} has {len(rows)} tuples, "
                f"more than the declared maximum {max_cardinality[rel.name]}"
            )
        for row in rows:
            wide.extend(row)
        padding = max_cardinality[rel.name] - len(rows)
        wide.extend([BOTTOM] * (padding * rel.arity))
    return tuple(wide)


def inline_inverse(
    row: Tuple[Any, ...], fields: Sequence[WideField], schema: DatabaseSchema
) -> Database:
    """Decode one wide tuple into a database, dropping ``⊥`` tuples."""
    per_tuple: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for (relation_name, position, attribute), value in zip(fields, row):
        per_tuple.setdefault((relation_name, position), {})[attribute] = value

    database = Database()
    for rel in schema:
        relation = Relation(RelationSchema(rel.name, rel.attributes))
        positions = sorted(pos for (name, pos) in per_tuple if name == rel.name)
        for position in positions:
            values = tuple(per_tuple[(rel.name, position)][attr] for attr in rel.attributes)
            if contains_bottom(values):
                continue
            relation.insert(values)
        database.add(relation)
    return database


def _merged_schema(databases: Sequence[Database]) -> DatabaseSchema:
    """Union of the relation schemas of several databases (names must agree on attributes)."""
    merged: Dict[str, RelationSchema] = {}
    for database in databases:
        for relation in database:
            existing = merged.get(relation.schema.name)
            if existing is None:
                merged[relation.schema.name] = relation.schema
            elif existing.attributes != relation.schema.attributes:
                raise RepresentationError(
                    f"relation {relation.schema.name!r} has conflicting schemas across worlds"
                )
    return DatabaseSchema(merged.values())
