"""repro — World-Set Decompositions for incomplete and probabilistic data.

A from-scratch Python reproduction of "10^(10^6) Worlds and Beyond:
Efficient Representation and Processing of Incomplete Information"
(Antova, Koch, Olteanu; ICDE 2007 / VLDB Journal).

The package is organized in layers:

* :mod:`repro.relational`  — an in-memory relational engine (the substrate
  the paper delegates to PostgreSQL),
* :mod:`repro.worlds`      — explicit world-sets, or-set relations and
  tuple-independent probabilistic databases,
* :mod:`repro.core`        — WSDs, WSDTs, UWSDTs, query evaluation,
  confidence computation, normalization and the chase,
* :mod:`repro.ctables`     — v-tables and c-tables (related formalisms),
* :mod:`repro.baselines`   — naive engines used as oracles and baselines,
* :mod:`repro.census`      — the synthetic IPUMS-like evaluation workload,
* :mod:`repro.apps`        — the application scenarios of Section 10,
* :mod:`repro.bench`       — harness utilities regenerating every table and
  figure of the evaluation section.
"""

from .core import (
    UWSDT,
    WSD,
    WSDT,
    Comparison,
    Component,
    EqualityGeneratingDependency,
    FieldRef,
    FunctionalDependency,
    chase_uwsdt,
    chase_wsd,
    confidence,
    normalize_wsd,
    possible,
    possible_with_confidence,
    uwsdt_possible_with_confidence,
)
from .relational import Database, Relation, RelationSchema
from .worlds import OrSet, OrSetRelation, TupleIndependentDatabase, WorldSet

__version__ = "1.0.0"

__all__ = [
    "UWSDT",
    "WSD",
    "WSDT",
    "Comparison",
    "Component",
    "EqualityGeneratingDependency",
    "FieldRef",
    "FunctionalDependency",
    "chase_uwsdt",
    "chase_wsd",
    "confidence",
    "normalize_wsd",
    "possible",
    "possible_with_confidence",
    "uwsdt_possible_with_confidence",
    "Database",
    "Relation",
    "RelationSchema",
    "OrSet",
    "OrSetRelation",
    "TupleIndependentDatabase",
    "WorldSet",
    "__version__",
]
