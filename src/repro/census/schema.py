"""The synthetic IPUMS-like census schema.

The paper's experiments use the public 5 % extract of the 1990 US census
(IPUMS): a single relation with 50 exclusively multiple-choice attributes
and 12.5 million tuples.  We cannot ship that dataset, so this module
defines a schema with the same shape: the attributes referenced by the
paper's queries (Figure 29) and cleaning dependencies (Figure 25) with
domain sizes taken from the IPUMS code books, padded with generic
multiple-choice attributes up to 50 columns.

Only the *shape* matters for the reproduction: attribute count, domain
sizes (which bound or-set sizes), and the selectivities of the queries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..relational.schema import RelationSchema

#: Name of the census relation (matches the paper's ``R``).
CENSUS_RELATION = "R"

#: Attributes referenced by the queries of Figure 29 and the dependencies of
#: Figure 25, with the size of their (categorical) domain.  Values are the
#: integers ``0 .. size-1`` except where noted below.
NAMED_ATTRIBUTES: List[Tuple[str, int]] = [
    ("CITIZEN", 5),      # 0 = born in the US
    ("IMMIGR", 11),      # 0 = not an immigrant
    ("FEB55", 2),        # served Feb 1955 era
    ("KOREAN", 2),       # served in Korea
    ("VIETNAM", 2),      # served in Vietnam
    ("WWII", 2),         # served in WWII
    ("MILITARY", 5),     # 4 = never served
    ("MARITAL", 5),      # 0 = now married
    ("RSPOUSE", 7),      # 1/2 = married couple, 5/6 = not applicable variants
    ("LANG1", 3),        # 2 = speaks only English
    ("ENGLISH", 5),      # 4 = does not speak English
    ("RPOB", 56),        # place of birth recode; 52 = born abroad of US parents
    ("SCHOOL", 3),       # 0 = not attending
    ("YEARSCH", 18),     # 17 = doctorate
    ("POWSTATE", 60),    # place-of-work state, IPUMS index (>50 = special codes)
    ("POB", 60),         # place of birth (state index)
    ("FERTIL", 14),      # 1 = no children ever born
]

#: Total attribute count of the census relation (as in the paper).
TOTAL_ATTRIBUTES = 50


def census_attributes() -> List[str]:
    """The 50 attribute names of the census relation."""
    names = [name for name, _ in NAMED_ATTRIBUTES]
    filler_count = TOTAL_ATTRIBUTES - len(names)
    names.extend(f"Q{index:02d}" for index in range(1, filler_count + 1))
    return names


def attribute_domains() -> Dict[str, int]:
    """Domain size of each attribute (filler attributes are 8-way multiple choice)."""
    domains = {name: size for name, size in NAMED_ATTRIBUTES}
    for name in census_attributes():
        if name not in domains:
            domains[name] = 8
    return domains


def census_schema() -> RelationSchema:
    """The relation schema of the census relation."""
    return RelationSchema(CENSUS_RELATION, census_attributes())
