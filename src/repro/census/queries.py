"""The six census queries of Figure 29, as relational algebra ASTs.

The queries exercise varying operator combinations and selectivities:

* ``Q1`` — US citizens with a PhD (selective conjunctive selection),
* ``Q2`` — place of work of foreign-born citizens with poor English
  (selection + projection),
* ``Q3`` — widows with many children living in their state of birth
  (selection with an attribute-to-attribute condition + projection),
* ``Q4`` — married persons without children (very unselective selection),
* ``Q5`` — join of Q2 and Q3 restricted to states with IPUMS index > 50,
* ``Q6`` — places of birth and work of persons speaking English well.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.algebra.query import BaseRelation, Query
from ..relational.predicates import And, Or, attr_eq, eq, gt, ne
from .schema import CENSUS_RELATION


def q1(relation: str = CENSUS_RELATION) -> Query:
    """``Q1 := σ_{YEARSCH=17 ∧ CITIZEN=0}(R)``."""
    return BaseRelation(relation).select(And(eq("YEARSCH", 17), eq("CITIZEN", 0)))


def q2(relation: str = CENSUS_RELATION) -> Query:
    """``Q2 := π_{POWSTATE,CITIZEN,IMMIGR}(σ_{CITIZEN<>0 ∧ ENGLISH>3}(R))``."""
    return (
        BaseRelation(relation)
        .select(And(ne("CITIZEN", 0), gt("ENGLISH", 3)))
        .project(["POWSTATE", "CITIZEN", "IMMIGR"])
    )


def q3(relation: str = CENSUS_RELATION) -> Query:
    """``Q3 := π_{POWSTATE,MARITAL,FERTIL}(σ_{POWSTATE=POB}(σ_{FERTIL>4 ∧ MARITAL=1}(R)))``."""
    return (
        BaseRelation(relation)
        .select(And(gt("FERTIL", 4), eq("MARITAL", 1)))
        .select(attr_eq("POWSTATE", "POB"))
        .project(["POWSTATE", "MARITAL", "FERTIL"])
    )


def q4(relation: str = CENSUS_RELATION) -> Query:
    """``Q4 := σ_{FERTIL=1 ∧ (RSPOUSE=1 ∨ RSPOUSE=2)}(R)``."""
    return BaseRelation(relation).select(
        And(eq("FERTIL", 1), Or(eq("RSPOUSE", 1), eq("RSPOUSE", 2)))
    )


def q5(relation: str = CENSUS_RELATION) -> Query:
    """``Q5 := δ_{POWSTATE→P1}(σ_{POWSTATE>50}(Q2)) ⋈_{P1=P2} δ_{POWSTATE→P2}(σ_{POWSTATE>50}(Q3))``."""
    left = q2(relation).select(gt("POWSTATE", 50)).rename("POWSTATE", "P1")
    right = q3(relation).select(gt("POWSTATE", 50)).rename("POWSTATE", "P2")
    return left.join(right, "P1", "P2")


def q5_product_form(relation: str = CENSUS_RELATION) -> Query:
    """``Q5`` spelled as the paper defines joins: ``σ_{P1=P2}(… × …)``.

    Semantically identical to :func:`q5`, but the AST materializes the full
    cartesian product before selecting — exactly the shape the logical
    planner's ``σ(A=B) ∘ × → ⋈`` fusion rewrites away.  Used by the
    planned-vs-unplanned benchmark sweep.
    """
    left = q2(relation).rename("POWSTATE", "P1")
    right = q3(relation).rename("POWSTATE", "P2")
    return (
        left.product(right)
        .select(attr_eq("P1", "P2"))
        .select(gt("P1", 50))
    )


def q4_citizen(relation: str = CENSUS_RELATION) -> Query:
    """``π_{POWSTATE,CITIZEN}(σ_{FERTIL=1}(R))`` — the unselective Q4 "no
    children" filter (~25 % of the relation) with the heavily skewed
    ``CITIZEN`` column kept (85 % share one value)."""
    return (
        BaseRelation(relation).select(eq("FERTIL", 1)).project(["POWSTATE", "CITIZEN"])
    )


def q_four_way_join(relation: str = CENSUS_RELATION) -> Query:
    """A 4-way census join written in a pessimal left-deep order.

    Leaves: two renamed copies of the *unselective* :func:`q4_citizen`
    (``A``, ``B`` — ~25 % of the relation each) and two renamed copies of
    the *selective* :func:`q3` (``C``, ``D`` — a handful of tuples).  The
    written order is ``((A ⋈_{C1=C2} B) ⋈_{W1=P3} C) ⋈_{P3=P4} D``: the
    first join matches on ``CITIZEN`` (selectivity ≈ 0.73 under the census
    skew), materializing a near-quadratic intermediate template before the
    selective Q3 copies ever filter it.  The join-order enumerator's
    sampled selectivities see exactly that skew and start from the Q3
    copies instead — this query is the planned-vs-unplanned benchmark
    headline for join-order search, complementing the 2-way fusion headline
    of :func:`q6_self_join_product_form`.
    """
    a = q4_citizen(relation).rename("POWSTATE", "W1").rename("CITIZEN", "C1")
    b = q4_citizen(relation).rename("POWSTATE", "W2").rename("CITIZEN", "C2")
    c = (
        q3(relation)
        .rename("POWSTATE", "P3")
        .rename("MARITAL", "M3")
        .rename("FERTIL", "F3")
    )
    d = (
        q3(relation)
        .rename("POWSTATE", "P4")
        .rename("MARITAL", "M4")
        .rename("FERTIL", "F4")
    )
    return a.join(b, "C1", "C2").join(c, "W1", "P3").join(d, "P3", "P4")


def q6(relation: str = CENSUS_RELATION) -> Query:
    """``Q6 := π_{POWSTATE,POB}(σ_{ENGLISH=3}(R))``."""
    return BaseRelation(relation).select(eq("ENGLISH", 3)).project(["POWSTATE", "POB"])


def q6_self_join_product_form(relation: str = CENSUS_RELATION) -> Query:
    """Pairs of Q6 answers where one person works where the other was born.

    Written as ``σ_{B1=W2}(δ(Q6) × δ(Q6))`` — the unfused product shape.
    Q6 is the *unselective* query of Figure 29 (~10 % of the relation), so
    executing this AST verbatim materializes a genuinely quadratic product
    template; the planner's join fusion is what keeps it linear-ish.  Used
    by the planned-vs-unplanned benchmark sweep.
    """
    left = q6(relation).rename("POWSTATE", "W1").rename("POB", "B1")
    right = q6(relation).rename("POWSTATE", "W2").rename("POB", "B2")
    return left.product(right).select(attr_eq("B1", "W2"))


#: All six queries keyed by their paper name.
CENSUS_QUERIES: Dict[str, Callable[[], Query]] = {
    "Q1": q1,
    "Q2": q2,
    "Q3": q3,
    "Q4": q4,
    "Q5": q5,
    "Q6": q6,
}


def query_names() -> List[str]:
    """The names of the six census queries, in the paper's order."""
    return list(CENSUS_QUERIES)


def census_query(name: str) -> Query:
    """Return the query named ``name`` (``"Q1"`` .. ``"Q6"``)."""
    return CENSUS_QUERIES[name]()
