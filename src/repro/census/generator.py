"""Synthetic census data generator with or-set noise injection.

The paper's evaluation pipeline is:

1. take the (clean) IPUMS census relation,
2. *add incompleteness* by replacing a fraction of the fields ("noise ratio"
   or placeholder density: 0.005 %–0.1 %) by or-sets of 2–8 candidate values
   (average ≈ 3.5),
3. clean the data by chasing the 12 dependencies of Figure 25,
4. run the queries of Figure 29 on the resulting UWSDT.

This module reproduces steps 1 and 2 with a synthetic relation of the same
shape.  Value distributions are mildly skewed so that the Figure 29 queries
have selectivities of the same order as in the paper; the generated clean
data always satisfies the 12 dependencies, so — as in the paper — only the
injected or-sets can make worlds inconsistent.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..worlds.orset import OrSet, OrSetRelation
from .dependencies import census_dependencies
from .schema import CENSUS_RELATION, attribute_domains, census_attributes, census_schema

#: Maximum or-set size used by the noise injector (as in the paper).
MAX_OR_SET_SIZE = 8

#: Skewed value distributions for the attributes driving query selectivity.
#: Each entry maps a value to its sampling weight; unspecified domain values
#: share the remaining mass uniformly.
_VALUE_WEIGHTS: Dict[str, Dict[int, float]] = {
    "CITIZEN": {0: 0.85},
    "IMMIGR": {0: 0.80},
    "YEARSCH": {17: 0.02},
    "ENGLISH": {3: 0.10, 4: 0.05},
    "LANG1": {2: 0.70},
    "MARITAL": {0: 0.45, 1: 0.10},
    "RSPOUSE": {1: 0.25, 2: 0.15},
    "FERTIL": {1: 0.25},
    "MILITARY": {4: 0.55},
    "SCHOOL": {0: 0.70},
    "WWII": {1: 0.05},
    "KOREAN": {1: 0.04},
    "VIETNAM": {1: 0.06},
    "FEB55": {1: 0.03},
    "RPOB": {52: 0.01},
}


class CensusGenerator:
    """Deterministic generator for clean census rows and or-set noise."""

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self.attributes = census_attributes()
        self.domains = attribute_domains()
        self.dependencies = census_dependencies()
        self._random = random.Random(seed)

    # ------------------------------------------------------------------ #
    # Clean data
    # ------------------------------------------------------------------ #

    def _sample_value(self, attribute: str) -> int:
        domain_size = self.domains[attribute]
        weights = _VALUE_WEIGHTS.get(attribute)
        if not weights:
            return self._random.randrange(domain_size)
        roll = self._random.random()
        cumulative = 0.0
        for value, weight in weights.items():
            cumulative += weight
            if roll < cumulative:
                return value
        # Remaining mass spread uniformly over the unweighted values.
        others = [v for v in range(domain_size) if v not in weights]
        if not others:
            return self._random.randrange(domain_size)
        return self._random.choice(others)

    def _repair_row(self, values: Dict[str, int]) -> Dict[str, int]:
        """Adjust a sampled row so it satisfies all 12 dependencies."""
        for dependency in self.dependencies:
            premises_hold = all(
                premise.evaluate(values[premise.attribute]) for premise in dependency.premises
            )
            if not premises_hold:
                continue
            conclusion = dependency.conclusion
            if conclusion.evaluate(values[conclusion.attribute]):
                continue
            if conclusion.op in ("=", "=="):
                values[conclusion.attribute] = conclusion.constant
            else:
                domain_size = self.domains[conclusion.attribute]
                candidates = [
                    v for v in range(domain_size) if conclusion.evaluate(v)
                ]
                values[conclusion.attribute] = candidates[0] if candidates else 0
        return values

    def generate_row(self) -> Tuple[int, ...]:
        """One clean census row satisfying all dependencies."""
        values = {attribute: self._sample_value(attribute) for attribute in self.attributes}
        values = self._repair_row(values)
        return tuple(values[attribute] for attribute in self.attributes)

    def clean_relation(self, rows: int) -> Relation:
        """A clean census relation with ``rows`` tuples."""
        relation = Relation(census_schema())
        for index in range(rows):
            # Guarantee distinct rows without rejection sampling: embed a
            # counter in the last filler attribute's high bits would change
            # the domain, so instead retry a couple of times and accept that
            # occasional duplicates are dropped by set semantics.
            inserted = relation.insert(self.generate_row())
            attempts = 0
            while not inserted and attempts < 5:
                inserted = relation.insert(self.generate_row())
                attempts += 1
        return relation

    # ------------------------------------------------------------------ #
    # Noise injection (step 2 of the paper's pipeline)
    # ------------------------------------------------------------------ #

    def add_noise(self, relation: Relation, density: float) -> OrSetRelation:
        """Replace a ``density`` fraction of the fields by or-sets.

        Mirrors the paper: each or-set has a random size in
        ``[2, min(8, domain size)]`` and always contains the original value,
        so the clean world remains one of the possible worlds.
        """
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density {density} outside [0, 1]")
        noisy = OrSetRelation(census_schema())
        rng = random.Random(self.seed + 1)
        for row in relation:
            values: List[object] = []
            for attribute, value in zip(self.attributes, row):
                if rng.random() < density:
                    values.append(self._make_or_set(rng, attribute, value))
                else:
                    values.append(value)
            noisy.insert(tuple(values))
        return noisy

    def _make_or_set(self, rng: random.Random, attribute: str, original: int) -> OrSet:
        domain_size = self.domains[attribute]
        maximum = min(MAX_OR_SET_SIZE, domain_size)
        size = rng.randint(2, maximum) if maximum >= 2 else 2
        candidates = {original}
        while len(candidates) < size:
            candidates.add(rng.randrange(domain_size))
        ordered = sorted(candidates)
        return OrSet(ordered)

    def noisy_relation(self, rows: int, density: float) -> OrSetRelation:
        """Convenience: clean relation + noise in one call."""
        return self.add_noise(self.clean_relation(rows), density)


def uncertain_field_count(orset_relation: OrSetRelation) -> int:
    """Number of or-set fields (the ``#placeholders`` statistic)."""
    return len(orset_relation.uncertain_fields())
