"""The evaluation workload: a synthetic IPUMS-like census scenario.

Reproduces the paper's Section 9 setup: a 50-attribute multiple-choice
census relation, or-set noise injection at configurable densities, the 12
cleaning dependencies of Figure 25 and the six queries of Figure 29.
"""

from .dependencies import census_dependencies
from .generator import CensusGenerator, uncertain_field_count
from .queries import (
    CENSUS_QUERIES,
    census_query,
    q1,
    q2,
    q3,
    q4,
    q4_citizen,
    q5,
    q5_product_form,
    q6,
    q6_self_join_product_form,
    q_four_way_join,
    query_names,
)
from .schema import (
    CENSUS_RELATION,
    TOTAL_ATTRIBUTES,
    attribute_domains,
    census_attributes,
    census_schema,
)

__all__ = [
    "census_dependencies",
    "CensusGenerator",
    "uncertain_field_count",
    "CENSUS_QUERIES",
    "census_query",
    "q1",
    "q2",
    "q3",
    "q4",
    "q4_citizen",
    "q5",
    "q5_product_form",
    "q6",
    "q6_self_join_product_form",
    "q_four_way_join",
    "query_names",
    "CENSUS_RELATION",
    "TOTAL_ATTRIBUTES",
    "attribute_domains",
    "census_attributes",
    "census_schema",
]
