"""The twelve census cleaning dependencies of Figure 25.

All twelve are single-tuple equality-generating dependencies: real-life
consistency rules such as "citizens born in the USA are not immigrants" or
"people who served in the second world war have done their military
service".
"""

from __future__ import annotations

from typing import List

from ..core.chase import Comparison, EqualityGeneratingDependency
from .schema import CENSUS_RELATION


def census_dependencies(relation: str = CENSUS_RELATION) -> List[EqualityGeneratingDependency]:
    """The 12 EGDs of Figure 25, in the paper's order."""
    egd = EqualityGeneratingDependency
    atom = Comparison
    return [
        egd(relation, [atom("CITIZEN", "=", 0)], atom("IMMIGR", "=", 0)),
        egd(relation, [atom("FEB55", "=", 1)], atom("MILITARY", "!=", 4)),
        egd(relation, [atom("KOREAN", "=", 1)], atom("MILITARY", "!=", 4)),
        egd(relation, [atom("VIETNAM", "=", 1)], atom("MILITARY", "!=", 4)),
        egd(relation, [atom("WWII", "=", 1)], atom("MILITARY", "!=", 4)),
        egd(relation, [atom("MARITAL", "=", 0)], atom("RSPOUSE", "!=", 6)),
        egd(relation, [atom("MARITAL", "=", 0)], atom("RSPOUSE", "!=", 5)),
        egd(relation, [atom("LANG1", "=", 2)], atom("ENGLISH", "!=", 4)),
        egd(relation, [atom("RPOB", "=", 52)], atom("CITIZEN", "!=", 0)),
        egd(relation, [atom("SCHOOL", "=", 0)], atom("KOREAN", "!=", 1)),
        egd(relation, [atom("SCHOOL", "=", 0)], atom("FEB55", "!=", 1)),
        egd(relation, [atom("SCHOOL", "=", 0)], atom("WWII", "!=", 1)),
    ]
