"""``repro.obs`` — the observability layer: tracing, metrics, EXPLAIN ANALYZE.

The stack spans rewrite → join-order DP → sampling → lowering → backend
execution, plus an always-on asyncio service with a plan cache and a
self-tuning feedback loop.  This package is the one place all of it reports
to:

* :mod:`repro.obs.trace` — a contextvar-based hierarchical :class:`Tracer`
  with a strict no-op fast path when disabled, spans for every planning and
  execution stage (``plan`` / ``rewrite`` / ``join-dp`` / ``sampling`` /
  ``lowering`` / ``cache-lookup`` / ``execute`` plus one span per physical
  operator), and exporters for JSON-lines and the Chrome trace-event format
  (``REPRO_TRACE=<path>`` enables both the tracer and an exit-time export).
* :mod:`repro.obs.metrics` — a process-wide, thread-safe
  :class:`MetricsRegistry` of counters, gauges and bounded histograms, with
  a JSON snapshot and Prometheus-style text exposition.

``python -m repro.obs --selfcheck`` runs a traced workload end to end and
validates that the Chrome export parses and nests (wired into CI).

The human-facing artifact built on top of both is
``Query.explain_analyze(engine)`` / ``Session.explain_analyze(query)``: the
chosen physical plan annotated per node with estimated vs actual rows,
q-error, self vs cumulative time, and cache/feedback provenance.  See
``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    QERROR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_name,
)
from .trace import (
    DEFAULT_TRACE_PATH,
    NOOP_SPAN,
    TRACE_ENV,
    Span,
    Tracer,
    configure_from_env,
    get_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "QERROR_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "render_name",
    "DEFAULT_TRACE_PATH",
    "NOOP_SPAN",
    "TRACE_ENV",
    "Span",
    "Tracer",
    "configure_from_env",
    "get_tracer",
]
