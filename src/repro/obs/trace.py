"""Contextvar-based hierarchical tracing with a strict no-op fast path.

One process-wide :class:`Tracer` hands out :class:`Span` context managers::

    with get_tracer().span("request", fingerprint=fp) as span:
        ...
        span.annotate(rows=42)

Span parentage follows the *context*, not the call stack: the current span
lives in a :mod:`contextvars` variable, so spans nest correctly across
``await`` boundaries — two interleaved asyncio requests each keep their own
span tree, and thread-offloaded work inherits its caller's context the way
``contextvars`` prescribes.  Every root span mints a fresh ``trace_id``;
children inherit it, which is how one service request's planning decisions
are tied to its execution outcome.

**The disabled fast path is strict**: while the tracer is disabled (the
default), :meth:`Tracer.span` returns one shared no-op singleton — no
allocation, no clock reads, no contextvar writes — so instrumented hot
paths (``Query.run``, per-operator execution) cost one attribute check.
Tests assert this stays true.

Finished spans are kept in a bounded in-memory buffer and exported either as

* JSON-lines (:meth:`Tracer.export_jsonl`) — one span object per line, or
* Chrome trace-event format (:meth:`Tracer.export_chrome`) — loadable in
  ``chrome://tracing`` / https://ui.perfetto.dev; each trace id gets its own
  track, so concurrent requests render as parallel rows of nested slices.

Setting ``REPRO_TRACE=<path>`` enables the tracer at import time and
registers an :mod:`atexit` export to that path — ``.jsonl`` selects the
JSON-lines format, anything else the Chrome format (``REPRO_TRACE=1``
defaults to ``TRACE.json``).
"""

from __future__ import annotations

import atexit
import contextvars
import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: Environment variable that enables tracing and names the export path.
TRACE_ENV = "REPRO_TRACE"

#: Default export path for ``REPRO_TRACE=1`` / ``REPRO_TRACE=true``.
DEFAULT_TRACE_PATH = "TRACE.json"

#: Bound on buffered finished spans (the overflow count is reported instead
#: of growing memory with traffic).
MAX_BUFFERED_SPANS = 200_000

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)


class Span:
    """One traced region; also its own context manager."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "thread",
        "_tracer",
        "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(_span_ids)
        self.parent_id: Optional[int] = None
        self.trace_id = ""
        self.start = 0.0
        self.end: Optional[float] = None
        self.thread = 0
        self._token: Optional[contextvars.Token] = None

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span after it has started."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        parent = _current_span.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.trace_id = f"t{next(_trace_ids)}"
        self.thread = threading.get_ident()
        self._token = _current_span.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The singleton handed out by a disabled tracer — identity-checkable by
#: tests to prove the fast path allocates nothing.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """The process-wide span factory, buffer and exporter."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self.dropped = 0
        #: ``perf_counter`` origin used to place exported timestamps.
        self.epoch = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs: Any):
        """A context manager tracing ``name`` (no-op singleton when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def current(self) -> Optional[Span]:
        """The innermost live span of the calling context, or None."""
        return _current_span.get()

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= MAX_BUFFERED_SPANS:
                self.dropped += 1
                return
            self._spans.append(span)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Disable and drop all buffered spans (tests)."""
        with self._lock:
            self.enabled = False
            self._spans.clear()
            self.dropped = 0

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns the span count."""
        spans = self.finished_spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), default=str) + "\n")
        return len(spans)

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """Finished spans as Chrome ``"ph": "X"`` complete events.

        Each trace id is mapped to its own synthetic ``tid`` so concurrent
        requests render as parallel tracks; nesting within a track follows
        from timestamp containment, which the contextvar parentage
        guarantees.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        pid = os.getpid()
        for span in self.finished_spans():
            tid = tids.setdefault(span.trace_id, len(tids) + 1)
            events.append(
                {
                    "ph": "X",
                    "cat": "repro",
                    "name": span.name,
                    "pid": pid,
                    "tid": tid,
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": span.seconds * 1e6,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **{key: str(value) for key, value in span.attrs.items()},
                    },
                }
            )
        return events

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace-event JSON document; returns the span count."""
        events = self.chrome_trace_events()
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format": "repro-trace", "dropped_spans": self.dropped},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return len(events)


#: The process-wide tracer every instrumented layer shares.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return _TRACER


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Honor ``REPRO_TRACE``: enable the tracer and schedule an exit export.

    Returns the export path when tracing was enabled, else None.  Called
    once at import; callable again by tests after monkeypatching the
    environment.
    """
    env = os.environ if environ is None else environ
    value = env.get(TRACE_ENV, "").strip()
    if not value or value == "0" or value.lower() == "false":
        return None
    path = DEFAULT_TRACE_PATH if value.lower() in ("1", "true") else value
    _TRACER.enable()

    def _flush(target: str = path) -> None:
        if target.endswith(".jsonl"):
            _TRACER.export_jsonl(target)
        else:
            _TRACER.export_chrome(target)

    atexit.register(_flush)
    return path


configure_from_env()
