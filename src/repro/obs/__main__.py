"""``python -m repro.obs --selfcheck``: validate the tracing pipeline end to end.

Runs a small traced workload through the query service, exports the Chrome
trace-event document and the metrics snapshot, then re-parses both and
checks the structural invariants CI relies on:

* the trace JSON parses and every event carries the Chrome complete-event
  fields (``ph``/``name``/``ts``/``dur``/``pid``/``tid``),
* at least one ``request`` span exists and ``execute-operator`` spans nest
  inside it (timestamp containment on the request's track *and* parent-id
  chaining up to the request span),
* the metrics snapshot carries plan-cache and planner counters, and the
  Prometheus text exposition renders.

Exit status 0 when every check passes, 1 otherwise — wired into CI next to
the service smoke run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
from typing import Optional, Sequence

from .metrics import get_registry
from .trace import get_tracer


def _run_workload() -> None:
    """A few service requests (cold + cached) against a tiny database."""
    from ..service import QueryService
    from ..service.benchmark import traffic_database, traffic_queries

    service = QueryService()
    service.register_engine("database", traffic_database(rows=300))
    queries = traffic_queries(2)

    async def drive() -> None:
        session = service.session("database", "selfcheck")
        for _ in range(3):
            for query in queries:
                await session.execute(query)

    asyncio.run(drive())


def _check(condition: bool, message: str, failures: list) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def selfcheck(trace_path: Optional[str] = None, keep: bool = False) -> int:
    tracer = get_tracer()
    tracer.reset()
    tracer.enable()
    _run_workload()
    tracer.disable()

    cleanup = False
    if trace_path is None:
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", prefix="repro_trace_", delete=False
        )
        handle.close()
        trace_path = handle.name
        cleanup = not keep
    exported = tracer.export_chrome(trace_path)
    print(f"exported {exported} spans to {trace_path}")

    failures: list = []
    with open(trace_path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    events = document.get("traceEvents", [])
    _check(bool(events), "trace document parses and has events", failures)
    required = {"ph", "name", "ts", "dur", "pid", "tid"}
    _check(
        all(required <= set(event) for event in events),
        "every event carries the Chrome complete-event fields",
        failures,
    )

    requests = [e for e in events if e["name"] == "request"]
    operators = [e for e in events if e["name"].startswith("execute-operator")]
    _check(bool(requests), "at least one request span", failures)
    _check(bool(operators), "at least one execute-operator span", failures)

    by_span_id = {e["args"]["span_id"]: e for e in events}

    def _chains_to_request(event) -> bool:
        parent_id = event["args"].get("parent_id")
        while parent_id is not None:
            parent = by_span_id.get(parent_id)
            if parent is None:
                return False
            if parent["name"] == "request":
                return True
            parent_id = parent["args"].get("parent_id")
        return False

    def _contained(event) -> bool:
        for request in requests:
            if request["tid"] != event["tid"]:
                continue
            if (
                request["ts"] <= event["ts"]
                and event["ts"] + event["dur"] <= request["ts"] + request["dur"] + 1.0
            ):
                return True
        return False

    _check(
        all(_chains_to_request(op) for op in operators),
        "operator spans chain up to a request span",
        failures,
    )
    _check(
        all(_contained(op) for op in operators),
        "operator spans are time-contained in their request's track",
        failures,
    )

    snapshot = get_registry().snapshot()
    counters = snapshot.get("counters", {})
    _check(
        counters.get("repro.plan_cache.hits", 0) > 0,
        "plan-cache hit counter moved",
        failures,
    )
    _check(
        counters.get("repro.planner.plan_calls", 0) > 0,
        "planner call counter moved",
        failures,
    )
    _check(
        any(name.startswith("repro.exec.operator_seconds") for name in snapshot["histograms"]),
        "per-operator latency histograms recorded",
        failures,
    )
    text = get_registry().to_prometheus_text()
    _check(
        "# TYPE repro_plan_cache_hits counter" in text,
        "Prometheus text exposition renders",
        failures,
    )

    if cleanup:
        os.unlink(trace_path)
    if failures:
        print(f"selfcheck FAILED ({len(failures)} check(s))")
        return 1
    print("selfcheck passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability selfcheck: trace a workload, validate the "
        "Chrome trace export and the metrics snapshot."
    )
    parser.add_argument(
        "--selfcheck", action="store_true", help="run the end-to-end validation"
    )
    parser.add_argument(
        "--trace-output",
        default=None,
        help="keep the exported Chrome trace at this path (default: temp file)",
    )
    args = parser.parse_args(argv)
    if not args.selfcheck:
        parser.print_help()
        return 2
    return selfcheck(args.trace_output, keep=args.trace_output is not None)


if __name__ == "__main__":
    raise SystemExit(main())
