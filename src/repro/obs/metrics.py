"""Process-wide metrics registry: counters, gauges, bounded histograms.

Before this module every layer reported itself differently — the planner
through module-level probes (``plan_call_count`` / ``sampling_call_count``),
the plan cache through instance attributes, the executor through
``OperatorMetrics`` lists, the service through an ad-hoc ``ServiceStats``
dataclass.  The :class:`MetricsRegistry` gives them one shared, thread-safe
vocabulary:

* :class:`Counter` — monotonically increasing event counts
  (``repro.planner.plan_calls``, ``repro.plan_cache.evictions{reason=...}``),
* :class:`Gauge` — last-written values (``repro.feedback.constant_drift``),
* :class:`Histogram` — bounded-bucket distributions with exact count / sum /
  min / max and bucket-resolution percentiles
  (``repro.exec.operator_seconds{operator=...}``,
  ``repro.service.request_seconds{cache=...}``).

Histograms are *bounded*: a fixed bucket ladder is chosen at creation time
(log-spaced latency and q-error ladders are provided), so memory per metric
is constant no matter how many observations arrive — an always-on service
must not grow its telemetry with its traffic.

Every metric is identified by a dotted name plus an optional, sorted label
set; :meth:`MetricsRegistry.snapshot` returns one JSON-ready document (the
``METRICS_smoke.json`` CI artifact) and
:meth:`MetricsRegistry.to_prometheus_text` renders the standard text
exposition format for scraping.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Log-spaced seconds ladder: 1 µs .. 100 s (wall times of operators,
#: requests and lock waits all land comfortably inside it).
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    coefficient * 10.0 ** exponent
    for exponent in range(-6, 3)
    for coefficient in (1.0, 2.5, 5.0)
)

#: Powers-of-two q-error ladder (q-error is ≥ 1 by construction).
QERROR_BUCKETS: Tuple[float, ...] = tuple(float(2 ** power) for power in range(0, 11))

#: Generic default when a caller states no ladder.
DEFAULT_BUCKETS: Tuple[float, ...] = LATENCY_BUCKETS


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """``name{k="v",...}`` — the stable key used in snapshots."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-written value (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A bounded-bucket distribution (thread-safe, constant memory).

    ``bounds`` are the inclusive upper edges of the buckets; one implicit
    overflow bucket (``+Inf``) catches everything above the ladder.
    Percentiles are resolved to the upper edge of the bucket in which the
    requested rank falls — exact enough for telemetry, and the error is
    bounded by the ladder's spacing.
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        labels: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, fraction: float) -> Optional[float]:
        """Upper bucket edge at the given rank (None when empty).

        The overflow bucket resolves to the observed maximum, so a ladder
        that turned out too short still reports something truthful.
        """
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, round(fraction * self._count))
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            low, high = self._min, self._max
        document: Dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "buckets": [
                [bound, counts[index]] for index, bound in enumerate(self.bounds)
            ]
            + [["+Inf", counts[-1]]],
        }
        for label, fraction in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            document[label] = self.percentile(fraction)
        return document


class MetricsRegistry:
    """The process-wide metric namespace (get-or-create by name + labels)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Any] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {render_name(*key)!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=buckets)

    def reset(self) -> None:
        """Drop every metric (tests; a live process never resets)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        """One consistent JSON-ready document of every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for (name, labels), metric in sorted(metrics.items()):
            rendered = render_name(name, labels)
            if isinstance(metric, Counter):
                counters[rendered] = metric.value
            elif isinstance(metric, Gauge):
                gauges[rendered] = metric.value
            elif isinstance(metric, Histogram):
                histograms[rendered] = metric.snapshot()
        return {
            "format": "repro-metrics",
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    @staticmethod
    def _prometheus_name(name: str) -> str:
        return name.replace(".", "_").replace("-", "_")

    def to_prometheus_text(self) -> str:
        """The standard Prometheus text exposition format."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for (name, labels), metric in sorted(metrics.items()):
            flat = self._prometheus_name(name)
            label_text = (
                "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}" if labels else ""
            )
            if isinstance(metric, Counter):
                if seen_types.get(flat) != "counter":
                    lines.append(f"# TYPE {flat} counter")
                    seen_types[flat] = "counter"
                lines.append(f"{flat}{label_text} {metric.value}")
            elif isinstance(metric, Gauge):
                if seen_types.get(flat) != "gauge":
                    lines.append(f"# TYPE {flat} gauge")
                    seen_types[flat] = "gauge"
                lines.append(f"{flat}{label_text} {metric.value}")
            elif isinstance(metric, Histogram):
                if seen_types.get(flat) != "histogram":
                    lines.append(f"# TYPE {flat} histogram")
                    seen_types[flat] = "histogram"
                snap = metric.snapshot()
                cumulative = 0
                for bound, bucket_count in snap["buckets"]:
                    cumulative += bucket_count
                    le = bound if bound == "+Inf" else repr(bound)
                    extra = ",".join(f'{k}="{v}"' for k, v in labels)
                    joined = f'le="{le}"' + ("," + extra if extra else "")
                    lines.append(f"{flat}_bucket{{{joined}}} {cumulative}")
                lines.append(f"{flat}_sum{label_text} {snap['sum']}")
                lines.append(f"{flat}_count{label_text} {snap['count']}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented layer shares.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
