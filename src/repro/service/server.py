"""The asyncio query service: three engines, shared plan cache, self-correction.

:class:`QueryService` owns a set of registered engines (Database / WSD /
UWSDT) and serves concurrent client sessions.  Per request it

1. fingerprints the query (:meth:`Query.fingerprint`),
2. looks the fingerprint up in the engine's
   :class:`~repro.service.plan_cache.PlanCache` — a hit (validated against
   the catalog version keys of every touched base relation) skips rewrite,
   join-order DP, sampling and lowering entirely,
3. on a miss, plans + lowers once and caches the result,
4. executes the physical plan with metrics collection, which feeds
   estimated-vs-actual cardinalities into the statistics catalog's
   semantically keyed observation store
   (:mod:`~repro.core.planner.observed`),
5. checks the replan trigger: when an entry has executed at least
   ``replan_min_executions`` times and its worst per-operator q-error still
   exceeds ``replan_qerror``, the cached plan is evicted — the *next*
   request replans against statistics that now carry the observations, so
   hot, mis-estimated queries self-correct their join orders under live
   traffic without any operator intervention.

Engine access is serialized per engine through an ``asyncio.Lock``: the
representation engines mutate themselves on every ``Q̂`` execution, so two
interleaved queries against the same WSD/UWSDT must not overlap.  Requests
against *different* engines interleave freely.  The underlying shared
structures (statistics catalog, index pool, plan cache) carry their own
thread locks besides, so even thread-offloaded work cannot corrupt them.
"""

from __future__ import annotations

import asyncio
import collections
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from ..core.exec import lower, resolve_backend
from ..core.exec.metrics import ExecutionMetrics
from ..core.exec.physical import PhysicalPlan
from ..core.planner.catalog import catalog_for
from ..obs.metrics import LATENCY_BUCKETS, get_registry
from ..obs.trace import get_tracer
from .plan_cache import CachedPlan, PlanCache, plan_cache_for
from .session import Session

#: Evict (and thereby replan) a cached query whose worst per-operator
#: q-error still exceeds this bound after the minimum execution count.
DEFAULT_REPLAN_QERROR = 4.0

#: Executions before the replan trigger may fire — must be at least
#: :data:`~repro.core.planner.observed.OBSERVED_MIN_COUNT`, or the replan
#: would run before the planner is allowed to consume the observations.
DEFAULT_REPLAN_MIN_EXECUTIONS = 2

#: Environment variable overriding the slow-query threshold (milliseconds).
SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"

#: Default slow-query threshold in seconds (a request slower than this is
#: recorded in the slow-query log).
DEFAULT_SLOW_QUERY_SECONDS = 0.25

#: Bound on retained slow-query records.
SLOW_QUERY_LOG_SIZE = 256

_slow_log = logging.getLogger("repro.service.slow")


def slow_query_threshold_from_env(default: float = DEFAULT_SLOW_QUERY_SECONDS) -> float:
    """The slow-query threshold in seconds, honoring ``REPRO_SLOW_QUERY_MS``."""
    value = os.environ.get(SLOW_QUERY_ENV, "").strip()
    if not value:
        return default
    try:
        return float(value) / 1e3
    except ValueError:
        return default


@dataclass
class SlowQuery:
    """One request that exceeded the slow-query threshold."""

    fingerprint: str
    engine: str
    seconds: float
    #: Whether the offending request was served from the plan cache.
    cached: bool
    #: Worst per-operator q-error of the request (None without estimates).
    worst_qerror: Optional[float]
    trace_id: Optional[str]
    result_name: str


@dataclass
class QueryOutcome:
    """What one service request produced."""

    fingerprint: str
    engine: str
    value: Any
    result_name: str
    #: True when the request was served from the plan cache.
    cached: bool
    #: True when this execution evicted the cached plan for replanning.
    replanned: bool
    seconds: float
    metrics: Optional[ExecutionMetrics] = None
    #: The executed physical plan (its nodes carry this run's per-operator
    #: metrics) — what ``Session.explain_analyze`` renders.
    physical: Optional[PhysicalPlan] = None
    #: Trace id of the request span (None with tracing disabled).
    trace_id: Optional[str] = None
    #: Kind of the backend that executed the request (``"database"`` /
    #: ``"wsd"`` / ``"uwsdt"`` / ``"columnar"`` / ``"sharded"``) — also the
    #: plan-cache sub-key the request was served under.
    backend: Optional[str] = None
    #: Worker count of a sharded request (None for in-process backends) —
    #: the remaining plan-cache sub-key.
    workers: Optional[int] = None


@dataclass
class ServiceStats:
    """Rolled-up service telemetry (latencies in seconds)."""

    requests: int = 0
    cache_hits: int = 0
    replans: int = 0
    cold_latencies: List[float] = field(default_factory=list)
    warm_latencies: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @staticmethod
    def percentile(values: List[float], fraction: float) -> Optional[float]:
        """Nearest-rank percentile (``fraction`` in [0, 1]); None when empty."""
        if not values:
            return None
        ordered = sorted(values)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def latency_summary(self) -> Dict[str, Optional[float]]:
        return {
            "cold_p50": self.percentile(self.cold_latencies, 0.50),
            "warm_p50": self.percentile(self.warm_latencies, 0.50),
            "warm_p95": self.percentile(self.warm_latencies, 0.95),
            "warm_p99": self.percentile(self.warm_latencies, 0.99),
        }


class QueryService:
    """An always-on query service over registered engines."""

    def __init__(
        self,
        replan_qerror: float = DEFAULT_REPLAN_QERROR,
        replan_min_executions: int = DEFAULT_REPLAN_MIN_EXECUTIONS,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        self.engines: Dict[str, Any] = {}
        self.replan_qerror = replan_qerror
        self.replan_min_executions = replan_min_executions
        #: Requests slower than this (seconds) land in :attr:`slow_queries`;
        #: defaults to ``REPRO_SLOW_QUERY_MS`` or 250 ms.
        self.slow_query_seconds = (
            slow_query_threshold_from_env() if slow_query_seconds is None else slow_query_seconds
        )
        self.stats = ServiceStats()
        #: Bounded log of requests that exceeded the slow-query threshold.
        self.slow_queries: Deque[SlowQuery] = collections.deque(maxlen=SLOW_QUERY_LOG_SIZE)
        self._locks: Dict[str, asyncio.Lock] = {}
        self._result_counter = 0

    # ------------------------------------------------------------------ #
    # Registration and sessions
    # ------------------------------------------------------------------ #

    def register_engine(self, name: str, engine: Any) -> None:
        """Register an engine; attaches its catalog and plan cache eagerly."""
        self.engines[name] = engine
        catalog_for(engine)
        plan_cache_for(engine)

    def session(self, engine_name: str, name: Optional[str] = None) -> Session:
        """Open a client session against one registered engine."""
        if engine_name not in self.engines:
            raise KeyError(f"no engine registered under {engine_name!r}")
        return Session(self, engine_name, name)

    def plan_cache(self, engine_name: str) -> PlanCache:
        return plan_cache_for(self.engines[engine_name])

    def _lock(self, engine_name: str) -> asyncio.Lock:
        lock = self._locks.get(engine_name)
        if lock is None:
            lock = self._locks[engine_name] = asyncio.Lock()
        return lock

    def _next_result_name(self) -> str:
        # Q̂ extends representation engines in place, so every execution
        # needs a result name not already present in the schema.
        self._result_counter += 1
        return f"__svc{self._result_counter}"

    # ------------------------------------------------------------------ #
    # The request path
    # ------------------------------------------------------------------ #

    async def execute(
        self,
        engine_name: str,
        query,
        result_name: Optional[str] = None,
        backend=None,
        workers: Optional[int] = None,
    ) -> QueryOutcome:
        """Serve one query: plan-cache lookup, execute, feed back, maybe evict.

        ``backend`` is the executing-backend spec (``"row"`` / ``"columnar"``
        / ``"sharded"`` / ``"auto"`` / None for the ``REPRO_BACKEND``
        environment variable); ``workers`` sizes the sharded backend's pool.
        The resolved backend kind *and* worker count are part of the
        plan-cache key, so a plan lowered for the row backend is never
        served to a columnar request, and a sharded plan's Exchange fan-out
        is never reused at a different worker count.
        """
        engine = self.engines[engine_name]
        cache = plan_cache_for(engine)
        executor = resolve_backend(engine, backend, workers=workers)
        worker_count = getattr(executor, "workers", None)
        fingerprint = query.fingerprint()
        name = result_name or self._next_result_name()
        tracer = get_tracer()
        registry = get_registry()
        with tracer.span("request", fingerprint=fingerprint, engine=engine_name) as root:
            trace_id = root.trace_id
            wait_start = time.perf_counter()
            async with self._lock(engine_name):
                waited = time.perf_counter() - wait_start
                registry.histogram(
                    "repro.service.lock_wait_seconds", LATENCY_BUCKETS
                ).observe(waited)
                start = time.perf_counter()
                with tracer.span("cache-lookup", backend=executor.kind):
                    entry = cache.lookup(fingerprint, executor.kind, worker_count)
                cached = entry is not None
                if entry is None:
                    entry = self._plan_and_cache(
                        engine, cache, query, fingerprint, executor, worker_count
                    )
                with tracer.span("execute", cached=cached):
                    result = query.run(
                        engine,
                        name,
                        physical=entry.physical,
                        collect_metrics=True,
                        backend=executor,
                    )
                seconds = time.perf_counter() - start
                entry.executions += 1
                metrics = result.metrics
                metrics.fingerprint = fingerprint
                metrics.trace_id = trace_id
                replanned = self._maybe_evict(cache, entry, metrics)
            root.annotate(cached=cached, seconds=seconds, replanned=replanned)

        self.stats.requests += 1
        outcome_label = "hit" if cached else "miss"
        registry.counter("repro.service.requests", cache=outcome_label).inc()
        registry.histogram(
            "repro.service.request_seconds", LATENCY_BUCKETS, cache=outcome_label
        ).observe(seconds)
        if cached:
            self.stats.cache_hits += 1
            self.stats.warm_latencies.append(seconds)
        else:
            self.stats.cold_latencies.append(seconds)
        if replanned:
            self.stats.replans += 1
            registry.counter("repro.service.replans").inc()
        self._record_if_slow(fingerprint, engine_name, seconds, cached, metrics, trace_id, name)
        return QueryOutcome(
            fingerprint=fingerprint,
            engine=engine_name,
            value=result.value,
            result_name=name,
            cached=cached,
            replanned=replanned,
            seconds=seconds,
            metrics=metrics,
            physical=result.physical,
            trace_id=trace_id,
            backend=executor.kind,
            workers=worker_count,
        )

    def _record_if_slow(
        self,
        fingerprint: str,
        engine_name: str,
        seconds: float,
        cached: bool,
        metrics: ExecutionMetrics,
        trace_id: Optional[str],
        result_name: str,
    ) -> None:
        """Append to the slow-query log when the request crossed the threshold."""
        if self.slow_query_seconds is None or seconds < self.slow_query_seconds:
            return
        record = SlowQuery(
            fingerprint=fingerprint,
            engine=engine_name,
            seconds=seconds,
            cached=cached,
            worst_qerror=metrics.max_cardinality_error(),
            trace_id=trace_id,
            result_name=result_name,
        )
        self.slow_queries.append(record)
        get_registry().counter("repro.service.slow_queries").inc()
        _slow_log.warning(
            "slow query %s on %s: %.1f ms (%s, worst q-error %s, trace %s)",
            fingerprint,
            engine_name,
            seconds * 1e3,
            "cache hit" if cached else "cache miss",
            f"{record.worst_qerror:.2f}" if record.worst_qerror is not None else "n/a",
            trace_id or "-",
        )

    def _plan_and_cache(
        self,
        engine: Any,
        cache: PlanCache,
        query,
        fingerprint: str,
        backend,
        workers: Optional[int] = None,
    ) -> CachedPlan:
        plan = query.plan(engine)
        physical = lower(plan.chosen, backend, plan.statistics)
        return cache.store(fingerprint, plan, physical, workers=workers)

    def _maybe_evict(
        self, cache: PlanCache, entry: CachedPlan, metrics: ExecutionMetrics
    ) -> bool:
        """Evict a cached plan whose estimates stay badly wrong.

        Eviction (not in-place replanning) keeps the request path simple:
        the next request for this fingerprint replans against statistics
        that now include the recorded observations, and caches the
        corrected plan.
        """
        if entry.executions < self.replan_min_executions:
            return False
        error = metrics.max_cardinality_error()
        if error is None or error < self.replan_qerror:
            return False
        cache.invalidate(
            entry.fingerprint, reason="replan", backend=entry.backend, workers=entry.workers
        )
        return True

    # ------------------------------------------------------------------ #
    # Telemetry exposition
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> Dict[str, Any]:
        """One JSON-ready snapshot of everything the service knows about
        itself: request/latency stats, per-engine plan-cache counters, the
        slow-query log, and the process-wide metrics registry."""
        caches = {}
        for name, engine in self.engines.items():
            cache = plan_cache_for(engine)
            caches[name] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidations": cache.invalidations,
            }
        return {
            "requests": self.stats.requests,
            "cache_hits": self.stats.cache_hits,
            "hit_rate": self.stats.hit_rate,
            "replans": self.stats.replans,
            "latency_seconds": self.stats.latency_summary(),
            "plan_caches": caches,
            "slow_queries": [
                {
                    "fingerprint": record.fingerprint,
                    "engine": record.engine,
                    "seconds": record.seconds,
                    "cached": record.cached,
                    "worst_qerror": record.worst_qerror,
                    "trace_id": record.trace_id,
                }
                for record in self.slow_queries
            ],
            "registry": get_registry().snapshot(),
        }

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the process-wide registry."""
        return get_registry().to_prometheus_text()

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    async def mutate(self, engine_name: str, mutator: Callable[[Any], Any]) -> Any:
        """Apply ``mutator(engine)`` under the engine lock.

        No explicit cache bookkeeping is needed: any mutation that can
        affect results moves the touched relations' version keys, which the
        plan cache and the statistics catalog both poll.
        """
        engine = self.engines[engine_name]
        async with self._lock(engine_name):
            return mutator(engine)

    def __repr__(self) -> str:
        return (
            f"QueryService({sorted(self.engines)}, {self.stats.requests} requests, "
            f"hit rate {self.stats.hit_rate:.0%})"
        )
