"""Concurrent-traffic benchmark for the query service.

Unlike the single-query wall-time benchmarks of :mod:`repro.bench`, this
drives the service the way clients would: several asyncio sessions issuing
a mixed stream of repeated queries against one shared engine, and reports

* cold latency (plan-cache misses: full rewrite + DP + sampling + lowering),
* warm p50/p95/p99 latency (cache hits: fingerprint lookup + execution),
* the plan-cache hit rate, and
* the warm speedup ``cold_p50 / warm_p50``.

The workload joins three synthetic relations under a handful of distinct
selection constants, so the traffic has a small set of hot fingerprints —
the regime the plan cache is built for.  ``python -m repro.service --smoke``
runs it at CI sizes and writes the JSON artifact uploaded next to the BENCH
and COST_PROFILE artifacts.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List

from ..core.algebra import BaseRelation
from ..relational import Database, Relation, RelationSchema
from ..relational.predicates import AttrConst
from .server import QueryService

#: Distinct selection constants → distinct hot fingerprints in the traffic.
DEFAULT_DISTINCT_QUERIES = 4


def traffic_database(rows: int) -> Database:
    """Three joinable relations for selective R ⋈ S ⋈ T traffic.

    Key spaces are wide relative to ``rows`` so each hot query touches a
    handful of tuples — the interactive regime where planning (sampling +
    rewrite + join-order DP + lowering), not execution, dominates a cold
    request, which is exactly what the plan cache amortizes.
    """
    r = Relation(
        RelationSchema("R", ("A", "RV")),
        [(i % 200, i) for i in range(rows)],
    )
    s = Relation(
        RelationSchema("S", ("B", "C")),
        [(i % 200, i % 300) for i in range(rows)],
    )
    t = Relation(
        RelationSchema("T", ("D", "TV")),
        [(i % 300, i) for i in range(rows)],
    )
    return Database([r, s, t])


def traffic_queries(distinct: int = DEFAULT_DISTINCT_QUERIES) -> List[Any]:
    """``distinct`` structurally different three-way join queries."""
    queries = []
    for constant in range(distinct):
        queries.append(
            BaseRelation("R")
            .select(AttrConst("A", "=", constant))
            .join(BaseRelation("S"), "A", "B")
            .join(BaseRelation("T"), "C", "D")
        )
    return queries


async def _client(service: QueryService, session, queries: List[Any], requests: int) -> None:
    for index in range(requests):
        await session.execute(queries[index % len(queries)])


async def _drive(
    service: QueryService, clients: int, requests_per_client: int, queries: List[Any]
) -> None:
    sessions = [service.session("database", f"client-{i}") for i in range(clients)]
    # Rotate each client's starting offset so the sessions contend for the
    # same hot fingerprints rather than marching in lockstep.
    await asyncio.gather(
        *(
            _client(service, session, queries[i % len(queries):] + queries[: i % len(queries)], requests_per_client)
            for i, session in enumerate(sessions)
        )
    )


def run_traffic_benchmark(
    rows: int = 2_000,
    clients: int = 4,
    requests_per_client: int = 25,
    distinct_queries: int = DEFAULT_DISTINCT_QUERIES,
) -> Dict[str, Any]:
    """Run the concurrent-traffic benchmark; returns the report payload."""
    service = QueryService()
    service.register_engine("database", traffic_database(rows))
    queries = traffic_queries(distinct_queries)
    asyncio.run(_drive(service, clients, requests_per_client, queries))

    stats = service.stats
    cache = service.plan_cache("database")
    summary = stats.latency_summary()
    cold_p50 = summary["cold_p50"]
    warm_p50 = summary["warm_p50"]
    speedup = (
        cold_p50 / warm_p50 if cold_p50 is not None and warm_p50 not in (None, 0.0) else None
    )
    return {
        "format": "repro-service-bench",
        "version": 1,
        "workload": {
            "rows": rows,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "distinct_queries": distinct_queries,
        },
        "requests": stats.requests,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
            "hit_rate": stats.hit_rate,
        },
        "latency_seconds": summary,
        "warm_speedup": speedup,
        "replans": stats.replans,
    }
