"""Fingerprinted plan cache with version-key validation.

A :class:`PlanCache` memoizes the full planning pipeline per engine: logical
rewrite, join-order DP, and lowering.  Entries are keyed by the query's
:meth:`~repro.core.algebra.query.Query.fingerprint` (a stable hash of the
canonical ``to_text()`` rendering) and validated by the *catalog version
keys* of every base relation the query touches — the exact per-engine
tokens :class:`~repro.core.planner.catalog.StatisticsCatalog` already uses
to invalidate statistics (``Relation.version`` on a Database, template
version + placeholder count on a UWSDT, ``WSD.revision`` on a WSD).

Validation is by *polling* at lookup time: a hit compares each stored
version key against the relation's current one, so any mutation of any
touched base relation invalidates exactly the entries that read it — no
more (untouched queries keep their plans) and no less (a stale plan is
never served).  Polling costs a few integer comparisons per base relation,
and it composes with every mutation path for free: classical inserts,
template inserts, component surgery, the chase — anything that moves the
version key.

Note the WSD caveat: ``WSD.revision`` bumps on *every* relation addition,
including the intermediates ``Q̂`` itself creates, so on a WSD the cache is
deliberately conservative — each execution invalidates all entries.  The
Database and UWSDT keys are precise and serve repeated traffic sample- and
DP-free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.exec.backends import backend_for
from ..core.exec.physical import PhysicalPlan
from ..core.planner.catalog import StatisticsCatalog, catalog_for
from ..core.planner.planner import Plan
from ..obs.metrics import get_registry

#: Attribute under which :func:`plan_cache_for` stores the cache on an engine.
CACHE_ATTRIBUTE = "_plan_cache"

#: Eviction reasons recorded in ``repro.plan_cache.evictions{reason=...}``:
#: ``stale-version`` (a base relation's version key moved under the entry),
#: ``replan`` (the service's q-error trigger), ``explicit`` (direct
#: invalidation), ``clear`` (whole-cache drop).
EVICTION_REASONS = ("stale-version", "replan", "explicit", "clear")


@dataclass
class CachedPlan:
    """One fully planned and lowered query, ready to re-execute."""

    fingerprint: str
    plan: Plan
    physical: PhysicalPlan
    #: Backend kind the physical plan was lowered for (``physical.engine``).
    #: Part of the cache key: a row-backend plan must never be served to a
    #: columnar request (or vice versa) — the plans differ structurally
    #: (materialize boundaries) and ``PhysicalPlan.execute`` rejects a
    #: backend-kind mismatch outright.
    backend: str
    #: Worker count a sharded plan was lowered for (0 for in-process
    #: backends).  Part of the cache key: a sharded plan's Exchange nodes
    #: bake in the shard fan-out, so plans for different worker counts are
    #: distinct entries.
    workers: int
    base_relations: Tuple[str, ...]
    #: Version key of every base relation at planning time; the entry is
    #: valid exactly while all of them still match.
    version_keys: Dict[str, Tuple[Any, ...]]
    #: How many times this entry has been executed (feeds the replan
    #: trigger: one execution is never enough evidence to replan).
    executions: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)


class PlanCache:
    """Per-engine cache of lowered plans, validated by version-key polling."""

    def __init__(self, engine: Any) -> None:
        self.engine = engine
        self.catalog: StatisticsCatalog = catalog_for(engine)
        self._lock = threading.RLock()
        self._entries: Dict[str, CachedPlan] = {}
        #: Backend kind assumed when ``lookup``/``peek`` are called without
        #: one — the engine's row backend, the pre-columnar behavior.
        self._default_backend = backend_for(engine).kind
        self.hits = 0
        self.misses = 0
        #: Entries dropped because a base relation's version key moved.
        self.invalidations = 0

    def _key(
        self, fingerprint: str, backend: Optional[str], workers: Optional[int] = None
    ) -> str:
        return f"{fingerprint}@{backend or self._default_backend}@{workers or 0}"

    def _current_keys(self, relations: Tuple[str, ...]) -> Optional[Dict[str, Tuple[Any, ...]]]:
        try:
            return {name: self.catalog.version_key(name) for name in relations}
        except KeyError:
            return None  # a base relation was dropped: treat as invalid

    def lookup(
        self,
        fingerprint: str,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Optional[CachedPlan]:
        """The valid cached plan for ``fingerprint`` on ``backend``, or None.

        ``backend`` is the executing backend's kind (defaulting to the
        engine's row backend) and is part of the key: a plan lowered for one
        backend is structurally wrong for another.  ``workers`` further
        scopes sharded plans (the Exchange fan-out is baked into the plan).
        A structurally present but stale entry (any base relation's version
        key moved) is dropped and counted as an invalidation + miss.
        """
        registry = get_registry()
        key = self._key(fingerprint, backend, workers)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                registry.counter("repro.plan_cache.misses").inc()
                return None
            current = self._current_keys(entry.base_relations)
            if current != entry.version_keys:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                registry.counter("repro.plan_cache.misses").inc()
                registry.counter(
                    "repro.plan_cache.evictions", reason="stale-version"
                ).inc()
                return None
            self.hits += 1
            registry.counter("repro.plan_cache.hits").inc()
            from ..analysis import invariants

            if invariants.verification_enabled():
                # A served entry's recorded backend kind must match the
                # engine kind its physical plan was lowered for, and be one
                # this engine can execute.
                invariants.verify_cached_backend(
                    entry.backend,
                    entry.physical.engine,
                    (self._default_backend, "columnar", "sharded"),
                )
            return entry

    def peek(
        self,
        fingerprint: str,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Optional[CachedPlan]:
        """The raw entry, without validation or hit/miss accounting (telemetry
        and ``explain_analyze`` provenance; never use it to serve a plan)."""
        with self._lock:
            return self._entries.get(self._key(fingerprint, backend, workers))

    def store(
        self,
        fingerprint: str,
        plan: Plan,
        physical: PhysicalPlan,
        workers: Optional[int] = None,
    ) -> CachedPlan:
        """Cache a freshly planned + lowered query under its fingerprint, the
        backend kind the physical plan was lowered for, and (for sharded
        plans) the worker count the Exchange fan-out was sized for."""
        from ..analysis import invariants

        if invariants.verification_enabled():
            invariants.verify_cached_backend(
                physical.engine,
                physical.engine,
                (self._default_backend, "columnar", "sharded"),
            )
        with self._lock:
            relations = tuple(sorted(plan.original.base_relations()))
            keys = self._current_keys(relations)
            entry = CachedPlan(
                fingerprint=fingerprint,
                plan=plan,
                physical=physical,
                backend=physical.engine,
                workers=workers or 0,
                base_relations=relations,
                version_keys=keys if keys is not None else {},
            )
            self._entries[self._key(fingerprint, physical.engine, workers)] = entry
            return entry

    def invalidate(
        self,
        fingerprint: Optional[str] = None,
        reason: str = "explicit",
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Drop one entry (or all of them when ``fingerprint`` is None).

        With a ``fingerprint`` but no ``backend``, every backend's plan for
        that query is dropped (whatever its worker count).  ``reason``
        labels the eviction counter (see :data:`EVICTION_REASONS`); the
        service passes ``"replan"`` from its q-error trigger.
        """
        registry = get_registry()
        with self._lock:
            if fingerprint is None:
                if self._entries:
                    registry.counter("repro.plan_cache.evictions", reason="clear").inc(
                        len(self._entries)
                    )
                self._entries.clear()
                return
            if backend is not None:
                keys = [self._key(fingerprint, backend, workers)]
            else:
                keys = [
                    key
                    for key, entry in self._entries.items()
                    if entry.fingerprint == fingerprint
                ]
            for key in keys:
                if self._entries.pop(key, None) is not None:
                    registry.counter("repro.plan_cache.evictions", reason=reason).inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._entries)
        return (
            f"PlanCache({count} plans, {self.hits} hits / "
            f"{self.misses} misses, {self.invalidations} invalidations)"
        )


def plan_cache_for(engine: Any) -> PlanCache:
    """The plan cache attached to ``engine``, created on first use.

    Engine ``copy()`` methods do not carry the cache over, mirroring the
    statistics catalog's attachment discipline.
    """
    cache = getattr(engine, CACHE_ATTRIBUTE, None)
    if cache is None:
        cache = PlanCache(engine)
        try:
            setattr(engine, CACHE_ATTRIBUTE, cache)
        except AttributeError:
            pass
    return cache
