"""The always-on query service: sessions, plan cache, self-correction.

The paper's representation systems are built for *interactive* querying
over large uncertain databases; this package is the serving layer that
makes repeated traffic cheap.  A :class:`QueryService` owns the registered
engines and serves concurrent asyncio sessions; per engine, a
:class:`~repro.service.plan_cache.PlanCache` memoizes the full planning
pipeline keyed by query fingerprint and validated by catalog version keys,
and the executed plans' cardinality feedback (recorded under semantic keys
by :mod:`repro.core.exec.feedback`) lets the service evict and replan hot
queries whose estimates stay wrong — the self-correcting loop.

* :mod:`repro.service.server`     — the service, request path, replan trigger.
* :mod:`repro.service.session`    — client sessions and snapshot reads.
* :mod:`repro.service.plan_cache` — fingerprint → lowered plan, version-key
  validated.
* :mod:`repro.service.benchmark`  — the concurrent-traffic benchmark
  (p50/p95/p99 + hit rate), run by ``python -m repro.service``.

Observability: every request runs under a ``request`` span (cache lookup,
planning and each physical operator nest inside it), feeds the process-wide
:mod:`repro.obs` metrics registry, and lands in the slow-query log when it
crosses the configured threshold; ``Session.explain_analyze`` renders the
executed plan with cache/feedback provenance.  See ``docs/observability.md``.
"""

from .plan_cache import CACHE_ATTRIBUTE, EVICTION_REASONS, CachedPlan, PlanCache, plan_cache_for
from .server import (
    DEFAULT_REPLAN_MIN_EXECUTIONS,
    DEFAULT_REPLAN_QERROR,
    DEFAULT_SLOW_QUERY_SECONDS,
    SLOW_QUERY_ENV,
    QueryOutcome,
    QueryService,
    ServiceStats,
    SlowQuery,
)
from .session import Session, Snapshot
from .benchmark import run_traffic_benchmark, traffic_database, traffic_queries

__all__ = [
    "CACHE_ATTRIBUTE",
    "EVICTION_REASONS",
    "CachedPlan",
    "PlanCache",
    "plan_cache_for",
    "DEFAULT_REPLAN_MIN_EXECUTIONS",
    "DEFAULT_REPLAN_QERROR",
    "DEFAULT_SLOW_QUERY_SECONDS",
    "SLOW_QUERY_ENV",
    "QueryOutcome",
    "QueryService",
    "ServiceStats",
    "SlowQuery",
    "Session",
    "Snapshot",
    "run_traffic_benchmark",
    "traffic_database",
    "traffic_queries",
]
