"""CLI entry point: ``python -m repro.service`` runs the traffic benchmark.

``--smoke`` shrinks the workload to CI sizes; the JSON report is written to
``--output`` and uploaded as a CI artifact next to the BENCH / COST_PROFILE
/ TRAJECTORY uploads.  The run is traced: the Chrome trace-event file and
the metrics-registry snapshot land in ``--trace-output`` /
``--metrics-output`` (``TRACE_smoke.json`` / ``METRICS_smoke.json`` by
default), so every CI run ships an openable span timeline and a counter
snapshot alongside the latency report.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from ..obs import get_registry, get_tracer
from .benchmark import run_traffic_benchmark


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent-traffic benchmark of the repro query service "
        "(latency percentiles + plan-cache hit rate)."
    )
    parser.add_argument("--output", default="SERVICE_smoke.json")
    parser.add_argument(
        "--trace-output",
        default="TRACE_smoke.json",
        help="Chrome trace-event file for the benchmark run ('' to disable)",
    )
    parser.add_argument(
        "--metrics-output",
        default="METRICS_smoke.json",
        help="metrics-registry snapshot for the run ('' to disable)",
    )
    parser.add_argument("--rows", type=int, default=2_000)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25, help="requests per client")
    parser.add_argument("--smoke", action="store_true", help="tiny CI sizes")
    args = parser.parse_args(argv)

    if args.smoke:
        rows, clients, requests = 600, 3, 12
    else:
        rows, clients, requests = args.rows, args.clients, args.requests

    tracer = get_tracer()
    registry = get_registry()
    if args.trace_output:
        tracer.enable()

    report = run_traffic_benchmark(
        rows=rows, clients=clients, requests_per_client=requests
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    if args.trace_output:
        spans = tracer.export_chrome(args.trace_output)
        print(f"trace written   : {args.trace_output} ({spans} spans)")
    if args.metrics_output:
        with open(args.metrics_output, "w", encoding="utf-8") as handle:
            json.dump(registry.snapshot(), handle, indent=2)
        print(f"metrics written : {args.metrics_output}")

    latency = report["latency_seconds"]
    print(f"requests        : {report['requests']}")
    print(f"cache hit rate  : {report['cache']['hit_rate']:.0%}")
    if latency["cold_p50"] is not None:
        print(f"cold p50        : {latency['cold_p50'] * 1e3:.3f} ms")
    for key in ("warm_p50", "warm_p95", "warm_p99"):
        if latency[key] is not None:
            print(f"{key:<16}: {latency[key] * 1e3:.3f} ms")
    if report["warm_speedup"] is not None:
        print(f"warm speedup    : {report['warm_speedup']:.1f}x")
    print(f"report written  : {args.output}")

    # The cache must actually serve repeated traffic; a zero hit rate means
    # the service is broken, and CI should say so.
    return 0 if report["cache"]["hit_rate"] > 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
