"""Client sessions: per-client state and snapshot reads over version counters.

A :class:`Session` is one client's handle onto the
:class:`~repro.service.server.QueryService`.  It carries no engine state of
its own — engines, catalogs and plan caches are shared service-side — but it

* names the engine the client talks to,
* counts the client's own traffic (requests, cache hits, latency),
* provides *snapshot reads*: :meth:`snapshot` captures the catalog version
  keys of a set of relations, and :meth:`changed_since` later reports
  exactly which of them have mutated.  This is the same version-counter
  machinery the statistics catalog and the plan cache poll, reused as a
  client-visible consistency primitive — a client that snapshots before a
  batch of reads can detect (and react to) concurrent writers without any
  locking on the read path.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.planner.catalog import catalog_for

_session_ids = itertools.count(1)


class Snapshot:
    """Version keys of a set of relations at one instant."""

    def __init__(self, engine: Any, relations: Sequence[str]) -> None:
        catalog = catalog_for(engine)
        self.engine = engine
        self.versions: Dict[str, Tuple[Any, ...]] = {
            name: catalog.version_key(name) for name in relations
        }

    def changed(self) -> List[str]:
        """Relations whose version key has moved since the snapshot."""
        catalog = catalog_for(self.engine)
        moved = []
        for name, key in self.versions.items():
            try:
                current = catalog.version_key(name)
            except KeyError:
                moved.append(name)
                continue
            if current != key:
                moved.append(name)
        return moved

    def valid(self) -> bool:
        return not self.changed()


class Session:
    """One client's conversational state against the query service."""

    def __init__(self, service: Any, engine_name: str, name: Optional[str] = None) -> None:
        self.service = service
        self.engine_name = engine_name
        self.name = name or f"session-{next(_session_ids)}"
        self.requests = 0
        self.cache_hits = 0
        self.latencies: List[float] = []

    @property
    def engine(self) -> Any:
        return self.service.engines[self.engine_name]

    async def execute(
        self, query, result_name: Optional[str] = None, backend=None, workers=None
    ):
        """Run a query through the service, accounting it to this session.

        ``backend`` selects the executing backend (``"row"`` / ``"columnar"``
        / ``"sharded"`` / ``"auto"``) and ``workers`` sizes the sharded
        worker pool; both are part of the service's plan-cache key.
        """
        outcome = await self.service.execute(
            self.engine_name, query, result_name, backend, workers=workers
        )
        self.requests += 1
        if outcome.cached:
            self.cache_hits += 1
        self.latencies.append(outcome.seconds)
        return outcome

    async def mutate(self, mutator):
        """Apply a mutation to this session's engine under the engine lock."""
        return await self.service.mutate(self.engine_name, mutator)

    async def explain_analyze(
        self, query, result_name: Optional[str] = None, backend=None, workers=None
    ) -> str:
        """Execute ``query`` through the service and render EXPLAIN ANALYZE.

        The report is the executed physical plan annotated per operator with
        estimated vs actual rows, q-error, per-child input rows and self vs
        cumulative time — plus the *service* provenance a bare
        ``Query.explain_analyze`` cannot know: whether the plan came from
        the cache, how many times the cached entry has executed, whether
        this execution triggered a replan eviction, and the request's trace
        id.  Estimates fed by executed-cardinality feedback (rather than
        samples) are tagged ``est←feedback``.
        """
        outcome = await self.execute(query, result_name, backend, workers)
        catalog = catalog_for(self.engine)
        observed = frozenset(catalog.observed_view())
        entry = self.service.plan_cache(self.engine_name).peek(
            outcome.fingerprint, outcome.backend, outcome.workers
        )
        header = [
            f"fingerprint: {outcome.fingerprint}  engine: {outcome.engine}",
            "plan source: "
            + ("plan cache (hit)" if outcome.cached else "planned this request (miss)")
            + (f", {entry.executions} cached execution(s)" if entry is not None else "")
            + (", evicted for replan after this run" if outcome.replanned else ""),
            f"request: {outcome.seconds * 1e3:.3f} ms"
            + (f"  trace: {outcome.trace_id}" if outcome.trace_id else ""),
        ]
        return outcome.physical.explain_analyze(observed, header)

    def snapshot(self, relations: Sequence[str]) -> Snapshot:
        """Capture the named relations' version keys for later staleness checks."""
        return Snapshot(self.engine, relations)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    def __repr__(self) -> str:
        return (
            f"Session({self.name}, engine={self.engine_name!r}, "
            f"{self.requests} requests, hit rate {self.hit_rate:.0%})"
        )
