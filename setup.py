"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that the package can also be installed in environments whose
tooling predates PEP 660 editable installs (e.g. ``python setup.py develop``
on machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
