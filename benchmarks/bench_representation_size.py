"""Representation-size comparison: the ``10^(10^6)`` explosion at laptop scale.

Reproduces the expressiveness/size claims of the introduction and Section 3:

* an or-set relation and its WSD encoding grow *linearly* with the number of
  uncertain fields,
* the explicit world-set relation grows *exponentially*,
* after cleaning with a key constraint the result is no longer representable
  as an or-set relation at all, while the WSD stays linear.
"""

from __future__ import annotations

import pytest

from repro.baselines.orset_engine import is_representable_as_orsets
from repro.bench import format_records, run_representation_size_experiment
from repro.core import WSD, FunctionalDependency, chase_wsd
from repro.worlds import OrSet, OrSetRelation

COLUMNS = (
    "uncertain_fields",
    "worlds",
    "orset_values",
    "wsd_values",
    "worldset_relation_values",
)


def test_representation_sizes(benchmark):
    """Linear WSD/or-set growth versus exponential world-set relation growth."""
    records = benchmark.pedantic(
        run_representation_size_experiment,
        kwargs={"field_counts": (2, 4, 6, 8, 10, 12)},
        iterations=1,
        rounds=1,
    )
    print("\nRepresentation sizes (values stored)")
    print(format_records(records, COLUMNS))

    for record in records:
        assert record["wsd_values"] == record["orset_values"]
        assert record["worlds"] == 2 ** record["uncertain_fields"]
    growth = [r["worldset_relation_values"] for r in records]
    linear = [r["wsd_values"] for r in records]
    # Exponential vs linear: the ratio explodes.
    assert growth[-1] / growth[0] > 100 * (linear[-1] / linear[0])


def test_cleaning_leaves_orset_representability(benchmark):
    """The introduction's claim: the cleaned census forms are not an or-set relation."""

    def build_and_clean():
        forms = OrSetRelation.from_dicts(
            "R",
            ["S", "N", "M"],
            [
                {"S": OrSet([185, 785]), "N": "Smith", "M": OrSet([1, 2])},
                {"S": OrSet([185, 186]), "N": "Brown", "M": OrSet([1, 2, 3, 4])},
            ],
        )
        wsd = WSD.from_orset_relation(forms)
        chase_wsd(
            wsd,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        return forms, wsd

    forms, wsd = benchmark.pedantic(build_and_clean, iterations=1, rounds=1)
    worlds = wsd.rep()
    assert len(forms.to_worldset()) == 32
    assert len(worlds) == 24
    # The 32-world input is or-set representable, the cleaned 24-world set is not.
    assert is_representable_as_orsets(forms.to_worldset(), "R")
    assert not is_representable_as_orsets(worlds, "R")
    # The WSD stays small: far fewer stored values than 24 worlds x 6 fields.
    assert wsd.representation_size() < 24 * 6
