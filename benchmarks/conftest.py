"""Shared configuration for the benchmark suites.

The benchmarks regenerate the paper's figures at laptop scale.  Sizes are
kept deliberately small so the full ``pytest benchmarks/ --benchmark-only``
run finishes in a few minutes; pass larger sizes through the environment
variables documented in :mod:`_bench_config`.
"""

from __future__ import annotations

import pytest

from repro.bench import PAPER_DENSITIES

from _bench_config import base_rows, max_rows, size_sweep  # noqa: F401


@pytest.fixture(scope="session")
def densities() -> tuple:
    return PAPER_DENSITIES
