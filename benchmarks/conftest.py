"""Shared configuration for the benchmark suites.

The benchmarks regenerate the paper's figures at laptop scale.  Sizes are
kept deliberately small so the full ``pytest benchmarks/ --benchmark-only``
run finishes in a few minutes; pass larger sizes through the environment
variables below to push the sweep closer to the paper's scale.

* ``REPRO_BENCH_ROWS``      — base relation size (default 1000)
* ``REPRO_BENCH_MAX_ROWS``  — largest size of the scaling sweeps (default 2000)
"""

from __future__ import annotations

import os

import pytest

from repro.bench import PAPER_DENSITIES


def base_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_ROWS", "1000"))


def max_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_ROWS", "2000"))


def size_sweep() -> tuple:
    top = max_rows()
    return tuple(sorted({top // 4, top // 2, top}))


@pytest.fixture(scope="session")
def densities() -> tuple:
    return PAPER_DENSITIES
