"""Shared configuration for the benchmark suites.

The benchmarks regenerate the paper's figures at laptop scale.  Sizes are
kept deliberately small so the full ``pytest benchmarks/ --benchmark-only``
run finishes in a few minutes; pass larger sizes through the environment
variables documented in :mod:`_bench_config`.
"""

from __future__ import annotations

import pytest

from repro.bench import PAPER_DENSITIES

from _bench_config import base_rows, max_rows, size_sweep  # noqa: F401

#: Where a benchmark run lands its JSON when ``--benchmark-json`` is not
#: given — the default smoke run seeds the trajectory instead of leaving it
#: empty.
DEFAULT_BENCHMARK_JSON = "BENCH_smoke.json"


def pytest_configure(config) -> None:
    # ``--benchmark-json`` is declared with type=FileType("wb"), so the
    # default has to be injected as an open handle.  The sentinel default
    # keeps this a no-op when pytest-benchmark is not installed (the option
    # attribute is absent) or when the caller chose a path.
    if getattr(config.option, "benchmark_json", "absent") is None:
        config.option.benchmark_json = open(DEFAULT_BENCHMARK_JSON, "wb")


@pytest.fixture(scope="session")
def densities() -> tuple:
    return PAPER_DENSITIES
