"""Figure 26: time for chasing the 12 census dependencies on UWSDTs.

The paper reports chase times for 0.1M–12.5M tuples at placeholder
densities 0.005 %–0.1 %, observing (log-log) linear scaling in both the
number of tuples and the density.  This suite benchmarks the same chase at
laptop scale and records the same series; the scaling-shape assertion lives
in ``tests/test_benchmarks_shape.py``.
"""

from __future__ import annotations

import pytest

from repro.bench import census_instance, density_label
from repro.census import census_dependencies
from repro.core import chase_uwsdt

from _bench_config import base_rows, size_sweep

DENSITIES = (0.00005, 0.0001, 0.0005, 0.001)


@pytest.mark.parametrize("density", DENSITIES, ids=[density_label(d) for d in DENSITIES])
def test_chase_by_density(benchmark, density):
    """Chase time at fixed size, varying placeholder density (one Figure 26 curve point)."""
    instance = census_instance(base_rows(), density)
    dependencies = census_dependencies()

    def run():
        uwsdt = instance.uwsdt.copy()
        chase_uwsdt(uwsdt, dependencies)
        return uwsdt

    result = benchmark(run)
    benchmark.extra_info["rows"] = base_rows()
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["components_after"] = result.component_count()
    benchmark.extra_info["components_gt1_after"] = result.multi_placeholder_component_count()


@pytest.mark.parametrize("rows", size_sweep())
def test_chase_by_size(benchmark, rows):
    """Chase time at fixed density (0.1 %), varying relation size (Figure 26 x-axis)."""
    density = 0.001
    instance = census_instance(rows, density)
    dependencies = census_dependencies()

    def run():
        uwsdt = instance.uwsdt.copy()
        chase_uwsdt(uwsdt, dependencies)
        return uwsdt

    result = benchmark(run)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["components_after"] = result.component_count()
