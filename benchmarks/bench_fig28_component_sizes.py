"""Figure 28: distribution of component sizes after the chase.

The paper reports, per relation size and density, how many components have
1, 2, 3 or ≥4 placeholders, observing that the counts drop off very quickly
— almost all fields remain independent after cleaning.  This benchmark
regenerates the histogram at laptop scale and asserts the same shape.
"""

from __future__ import annotations

import pytest

from repro.bench import format_records, run_component_size_experiment

from _bench_config import base_rows, size_sweep

DENSITIES = (0.00005, 0.0001, 0.0005, 0.001)

COLUMNS = ("rows", "density_label", "size_1", "size_2", "size_3", "size_4_plus")


def test_component_size_distribution(benchmark):
    """Regenerate the Figure 28 histogram for two relation sizes and four densities."""
    sizes = size_sweep()[-2:]
    records = benchmark.pedantic(
        run_component_size_experiment,
        kwargs={"sizes": sizes, "densities": DENSITIES},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 28 (laptop scale)")
    print(format_records(records, COLUMNS))

    for record in records:
        # Singleton components dominate, and counts fall off monotonically —
        # the paper's headline observation.
        assert record["size_1"] >= record["size_2"] >= record["size_3"]
        assert record["size_1"] >= record["size_4_plus"]
