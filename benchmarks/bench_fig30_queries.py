"""Figure 30: evaluation time of the six census queries on UWSDTs.

The paper plots, for each query Q1–Q6, the evaluation time against the
relation size with one curve per placeholder density, including the 0 %
curve (a single conventional world).  The headline observation is that the
UWSDT evaluation time closely tracks the one-world time for all queries but
the join query Q5.

Each benchmark below is one (query, density) curve point at the base size;
the densities include 0 % so the one-world baseline is part of the same
run.  Timing of the chase is *not* included (matching the paper: queries run
on the already-cleaned representation).
"""

from __future__ import annotations

import pytest

from repro.bench import census_instance, density_label
from repro.census import CENSUS_QUERIES, q5_product_form, q6_self_join_product_form
from repro.census.queries import q_four_way_join
from repro.core.algebra import BaseRelation, evaluate_on_database, evaluate_on_uwsdt
from repro.core.planner import Statistics, describe_join_order, plan, sampling_call_count

from _bench_config import base_rows

DENSITIES = (0.0, 0.00005, 0.0001, 0.0005, 0.001)
QUERIES = tuple(CENSUS_QUERIES)

_CHASED_CACHE = {}


def _chased(rows: int, density: float):
    key = (rows, density)
    if key not in _CHASED_CACHE:
        _CHASED_CACHE[key] = census_instance(rows, density).chased()
    return _CHASED_CACHE[key]


@pytest.mark.parametrize("density", DENSITIES, ids=[density_label(d) for d in DENSITIES])
@pytest.mark.parametrize("query_name", QUERIES)
def test_query_evaluation(benchmark, query_name, density):
    """One (query, density) point of Figure 30 at the base relation size."""
    rows = base_rows()
    instance = census_instance(rows, density)
    query = CENSUS_QUERIES[query_name]()

    if density == 0.0:
        database = instance.one_world_database()

        def run():
            return evaluate_on_database(query, database, "result")

        result = benchmark(run)
        benchmark.extra_info["result_size"] = len(result)
    else:
        chased = _chased(rows, density)

        def run():
            working_copy = chased.copy()
            evaluate_on_uwsdt(query, working_copy, "result")
            return working_copy

        result = benchmark(run)
        benchmark.extra_info["result_size"] = result.template_size("result")

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["query"] = query_name


# --------------------------------------------------------------------------- #
# Planned vs unplanned: the σ-over-× join queries through the logical planner
# --------------------------------------------------------------------------- #

PLANNER_DENSITIES = (0.0, 0.001)
PLANNER_QUERIES = {
    "Q5xσ": q5_product_form,
    "Q6⋈Q6": q6_self_join_product_form,
    "Q4way": q_four_way_join,
}


@pytest.mark.parametrize("optimize", [False, True], ids=["unplanned", "planned"])
@pytest.mark.parametrize(
    "density", PLANNER_DENSITIES, ids=[density_label(d) for d in PLANNER_DENSITIES]
)
@pytest.mark.parametrize("query_name", tuple(PLANNER_QUERIES))
def test_planned_vs_unplanned(benchmark, query_name, density, optimize):
    """One planned-vs-unplanned point: the same AST with and without the planner.

    Two headline rows: ``Q6⋈Q6`` (executed verbatim it materializes a
    quadratic product template; the planner fuses the selection into an
    equi-join) and ``Q4way`` (a 4-way join written in a pessimal order; the
    join-order enumerator defers the skewed ``CITIZEN`` join to last — ≥5×
    on the UWSDT at default sizes).  The chosen join order is recorded per
    (query, size) in the benchmark JSON so the trajectory of planner
    decisions accumulates alongside the timings.
    """
    rows = base_rows()
    instance = census_instance(rows, density)
    query = PLANNER_QUERIES[query_name]()

    if density == 0.0:
        database = instance.one_world_database()
        built_plan = plan(query, Statistics.from_database(database)) if optimize else None

        def run():
            return query.run(database, "result", optimize=optimize, plan=built_plan)

        result = benchmark(run)
        benchmark.extra_info["result_size"] = len(result)
    else:
        chased = _chased(rows, density)
        built_plan = plan(query, Statistics.from_uwsdt(chased)) if optimize else None

        def run():
            working_copy = chased.copy()
            query.run(working_copy, "result", optimize=optimize, plan=built_plan)
            return working_copy

        result = benchmark(run)
        benchmark.extra_info["result_size"] = result.template_size("result")

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["optimize"] = optimize
    benchmark.extra_info["join_order"] = (
        built_plan.join_order if optimize else describe_join_order(query)
    )


# --------------------------------------------------------------------------- #
# Row vs columnar vs sharded backend: the same plans, three execution modes
# --------------------------------------------------------------------------- #

BACKENDS = ("row", "columnar", "sharded")

#: Pool size of the sharded sweep points (also recorded in the JSON).
SHARD_WORKERS = 2


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "density", PLANNER_DENSITIES, ids=[density_label(d) for d in PLANNER_DENSITIES]
)
def test_row_vs_columnar_vs_sharded_backend(benchmark, density, backend):
    """One point of the backend sweep on the 4-way census join.

    The same planned query executes row-at-a-time, through the columnar
    kernels (certain subtrees run over ``ColumnBatch`` values between
    Materialize/Dematerialize boundaries; uncertain subtrees stay on the
    row path), and sharded (component-confined subtrees hash-partitioned
    across a ``SHARD_WORKERS``-process pool between Exchange/Gather
    boundaries).  Each backend appears as its own series in the benchmark
    JSON, so ``plot_trajectory.py`` charts the gaps across runs.
    """
    rows = base_rows()
    instance = census_instance(rows, density)
    query = q_four_way_join()
    workers = SHARD_WORKERS if backend == "sharded" else None

    if density == 0.0:
        database = instance.one_world_database()

        def run():
            return query.run(database, "result", backend=backend, workers=workers)

        result = benchmark(run)
        benchmark.extra_info["result_size"] = len(result)
    else:
        chased = _chased(rows, density)

        def run():
            working_copy = chased.copy()
            query.run(working_copy, "result", backend=backend, workers=workers)
            return working_copy

        result = benchmark(run)
        benchmark.extra_info["result_size"] = result.template_size("result")

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["query"] = "Q4way"
    benchmark.extra_info["backend"] = backend
    if workers is not None:
        benchmark.extra_info["workers"] = workers


# --------------------------------------------------------------------------- #
# Statistics catalog: repeated planning against an unchanged engine
# --------------------------------------------------------------------------- #


# --------------------------------------------------------------------------- #
# Physical execution: metrics-enabled runs, hash vs index-nested-loop joins
# --------------------------------------------------------------------------- #


def _join_cardinality_info(metrics):
    return [
        {
            "operator": record.label,
            "estimated_rows": record.estimated_rows,
            "actual_rows": record.rows_out,
            "q_error": record.cardinality_error,
            "seconds": record.seconds,
        }
        for record in metrics.join_records()
    ]


@pytest.mark.parametrize(
    "density", PLANNER_DENSITIES, ids=[density_label(d) for d in PLANNER_DENSITIES]
)
def test_metrics_enabled_four_way_join(benchmark, density):
    """The 4-way join with per-operator metrics at ``REPRO_BENCH_ROWS`` scale.

    Records, per join operator, the planner's estimated output cardinality
    against the actual one — the estimated-vs-actual q-error trajectory
    accumulates in the benchmark JSON alongside the timings.
    """
    from repro.core.planner import Statistics

    rows = base_rows()
    instance = census_instance(rows, density)
    query = q_four_way_join()

    def engine_copy():
        if density == 0.0:
            return instance.one_world_database()
        return _chased(rows, density).copy()

    warm = engine_copy()
    built_plan = plan(
        query,
        Statistics.from_database(warm) if density == 0.0 else Statistics.from_uwsdt(warm),
    )

    def run():
        return query.run(engine_copy(), "result", plan=built_plan, collect_metrics=True)

    result = benchmark(run)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["join_cardinalities"] = _join_cardinality_info(result.metrics)
    benchmark.extra_info["physical_operators"] = [
        record.operator for record in result.metrics.records
    ]


@pytest.mark.parametrize(
    "density", PLANNER_DENSITIES, ids=[density_label(d) for d in PLANNER_DENSITIES]
)
def test_index_join_probe(benchmark, density):
    """A selective materialized side probing the bare census scan.

    The selective Q3 answers are materialized as a stored relation, then
    joined back against the full census relation on ``POWSTATE`` — the
    canonical small-outer/large-inner shape.  The cost model must select an
    ``IndexNestedLoopJoin`` over a ``HashJoin`` here (asserted via the
    physical plan), and the benchmark records the forced wall time of both
    algorithms so their gap is tracked at ``REPRO_BENCH_ROWS`` scale.
    """
    import time

    from repro.census.queries import CENSUS_RELATION, q3

    rows = base_rows()
    instance = census_instance(rows, density)
    materialize = (
        q3()
        .rename("POWSTATE", "P3")
        .rename("MARITAL", "M3")
        .rename("FERTIL", "F3")
    )
    probe = BaseRelation("__q3mat").join(BaseRelation(CENSUS_RELATION), "P3", "POWSTATE")

    def engine_copy():
        if density == 0.0:
            database = instance.one_world_database()
            database.add(materialize.run(database, "__q3mat", optimize=False))
            return database
        working = _chased(rows, density).copy()
        materialize.run(working, "__q3mat", optimize=False)
        return working

    chosen = probe.physical_plan(engine_copy())
    assert chosen.uses("IndexNestedLoopJoin"), chosen.explain()

    def run():
        return probe.run(engine_copy(), "result", collect_metrics=True)

    result = benchmark(run)
    assert result.physical.uses("IndexNestedLoopJoin")

    forced_seconds = {}
    for algorithm in ("hash", "index-nested-loop"):
        engine = engine_copy()
        start = time.perf_counter()
        probe.run(engine, "result", force_join=algorithm)
        forced_seconds[algorithm] = time.perf_counter() - start

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["join_cardinalities"] = _join_cardinality_info(result.metrics)
    benchmark.extra_info["hash_join_seconds"] = forced_seconds["hash"]
    benchmark.extra_info["index_join_seconds"] = forced_seconds["index-nested-loop"]


@pytest.mark.parametrize(
    "density", PLANNER_DENSITIES, ids=[density_label(d) for d in PLANNER_DENSITIES]
)
def test_repeated_query_planning_overhead(benchmark, density):
    """Warm planning of the 4-way join: the statistics catalog serves every
    repeat, so planning overhead drops to the pure rewrite/estimate cost and
    the benchmark performs zero sampling work (asserted via the counter).

    ``cold_plan_seconds`` in the extra info is the one genuinely cold plan
    against a fresh copy of the same engine, for the cold/warm trajectory.
    """
    import time

    rows = base_rows()
    instance = census_instance(rows, density)
    query = q_four_way_join()
    if density == 0.0:
        engine = instance.one_world_database()
        cold_engine = instance.one_world_database()
    else:
        engine = _chased(rows, density)
        cold_engine = engine.copy()

    start = time.perf_counter()
    query.plan(cold_engine)
    cold_seconds = time.perf_counter() - start

    query.plan(engine)  # warm the engine's catalog
    calls_before = sampling_call_count()
    built = benchmark(lambda: query.plan(engine))
    assert sampling_call_count() == calls_before, "warm planning re-sampled"

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["cold_plan_seconds"] = cold_seconds
    benchmark.extra_info["join_order"] = built.join_order
