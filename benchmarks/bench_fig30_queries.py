"""Figure 30: evaluation time of the six census queries on UWSDTs.

The paper plots, for each query Q1–Q6, the evaluation time against the
relation size with one curve per placeholder density, including the 0 %
curve (a single conventional world).  The headline observation is that the
UWSDT evaluation time closely tracks the one-world time for all queries but
the join query Q5.

Each benchmark below is one (query, density) curve point at the base size;
the densities include 0 % so the one-world baseline is part of the same
run.  Timing of the chase is *not* included (matching the paper: queries run
on the already-cleaned representation).
"""

from __future__ import annotations

import pytest

from repro.bench import census_instance, density_label
from repro.census import CENSUS_QUERIES
from repro.core.algebra import evaluate_on_database, evaluate_on_uwsdt

from conftest import base_rows

DENSITIES = (0.0, 0.00005, 0.0001, 0.0005, 0.001)
QUERIES = tuple(CENSUS_QUERIES)

_CHASED_CACHE = {}


def _chased(rows: int, density: float):
    key = (rows, density)
    if key not in _CHASED_CACHE:
        _CHASED_CACHE[key] = census_instance(rows, density).chased()
    return _CHASED_CACHE[key]


@pytest.mark.parametrize("density", DENSITIES, ids=[density_label(d) for d in DENSITIES])
@pytest.mark.parametrize("query_name", QUERIES)
def test_query_evaluation(benchmark, query_name, density):
    """One (query, density) point of Figure 30 at the base relation size."""
    rows = base_rows()
    instance = census_instance(rows, density)
    query = CENSUS_QUERIES[query_name]()

    if density == 0.0:
        database = instance.one_world_database()

        def run():
            return evaluate_on_database(query, database, "result")

        result = benchmark(run)
        benchmark.extra_info["result_size"] = len(result)
    else:
        chased = _chased(rows, density)

        def run():
            working_copy = chased.copy()
            evaluate_on_uwsdt(query, working_copy, "result")
            return working_copy

        result = benchmark(run)
        benchmark.extra_info["result_size"] = result.template_size("result")

    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["density"] = density_label(density)
    benchmark.extra_info["query"] = query_name
