"""Figure 27: UWSDT characteristics after the chase and after each query.

The paper's table reports, for 12.5M tuples and four placeholder densities,
the number of components (#comp), the number of components spanning more
than one placeholder (#comp>1), the size of the component relation |C| and
the size of the template relation |R| — first after chasing the 12
dependencies, then for the answer of each of Q1–Q6.

This benchmark regenerates the same table at laptop scale and times the
statistics collection; the printed table is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.bench import format_records, run_characteristics_experiment
from repro.census import query_names

from _bench_config import base_rows

DENSITIES = (0.00005, 0.0001, 0.0005, 0.001)

COLUMNS = (
    "stage",
    "density_label",
    "components",
    "components_gt1",
    "component_relation_size",
    "template_size",
)


def test_characteristics_table(benchmark):
    """Regenerate the Figure 27 table (chase row plus one row per query, per density)."""
    records = benchmark.pedantic(
        run_characteristics_experiment,
        kwargs={"rows": base_rows(), "densities": DENSITIES},
        iterations=1,
        rounds=1,
    )
    table = format_records(records, COLUMNS)
    print("\nFigure 27 (laptop scale, {} tuples)".format(base_rows()))
    print(table)

    stages = {record["stage"] for record in records}
    assert stages == set(["chase"] + query_names())
    # The shape reported by the paper: the number of components grows with the
    # placeholder density, and query answers touch far fewer components than
    # the chased base relation.
    per_density = {
        record["density_label"]: record["components"]
        for record in records
        if record["stage"] == "chase"
    }
    ordered = [per_density[label] for label in ("0.005%", "0.01%", "0.05%", "0.1%")]
    assert ordered == sorted(ordered)
    for record in records:
        if record["stage"] != "chase":
            chase_row = next(
                r
                for r in records
                if r["stage"] == "chase" and r["density_label"] == record["density_label"]
            )
            assert record["components"] <= chase_row["components"]
