"""Chart the benchmark / cost-profile artifact trajectory across CI runs.

CI uploads ``BENCH_smoke.json`` (pytest-benchmark format),
``COST_PROFILE_smoke.json`` / ``COST_PROFILE_tuned.json``
(``repro-cost-profile`` format), ``SERVICE_smoke.json`` (the traffic
benchmark report) and ``METRICS_smoke.json`` (``repro-metrics`` registry
snapshot) per run.  Point this script at any number of those files — one
run's worth, or a directory of downloaded artifacts spanning many runs —
and it renders the trajectory:

* per-benchmark mean seconds over runs (planned vs unplanned, cold vs warm
  planning, hash vs index-nested-loop join timings, row vs columnar
  backend),
* the fitted cost constants per engine over runs,
* the planner's chosen join orders and estimated-vs-actual join
  cardinalities carried in the benchmarks' ``extra_info``,
* the query service's plan-cache hit rate and warm p95 request latency
  over runs, read from the service reports and metrics snapshots.

Outputs ``<prefix>.md`` always, ``<prefix>.svg`` with a dependency-free
hand-rolled line chart (matplotlib is used when available, but never
required), and — when service/metrics artifacts are given —
``<prefix>_service.svg`` with the linear-scale hit-rate chart.  Usage::

    python benchmarks/plot_trajectory.py \
        --bench BENCH_smoke.json --profiles COST_PROFILE_smoke.json \
        --service SERVICE_smoke.json --metrics METRICS_smoke.json \
        --output TRAJECTORY_smoke
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

# --------------------------------------------------------------------------- #
# Artifact loading
# --------------------------------------------------------------------------- #


def load_bench_runs(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load pytest-benchmark JSON files, sorted by their recorded datetime."""
    runs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        runs.append(
            {
                "path": path,
                "datetime": document.get("datetime", ""),
                "benchmarks": document.get("benchmarks", []),
            }
        )
    runs.sort(key=lambda run: (run["datetime"], run["path"]))
    return runs


def load_profile_runs(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load cost-profile JSON files in the given order."""
    runs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("format") != "repro-cost-profile":
            continue
        runs.append(
            {
                "path": path,
                "engines": document.get("engines", {}),
                "metadata": document.get("metadata", {}),
            }
        )
    return runs


def load_service_runs(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load traffic-benchmark reports (``python -m repro.service`` output)."""
    runs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if "cache" not in document or "latency_seconds" not in document:
            continue
        runs.append(
            {
                "path": path,
                "requests": document.get("requests"),
                "hit_rate": document.get("cache", {}).get("hit_rate"),
                "warm_p95": document.get("latency_seconds", {}).get("warm_p95"),
                "replans": document.get("replans"),
            }
        )
    return runs


def load_metrics_runs(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load ``repro-metrics`` registry snapshots (``METRICS_*.json``).

    Hit rate comes from the ``repro.plan_cache.hits`` / ``.misses``
    counters; warm p95 from the ``repro.service.request_seconds`` histogram
    labelled ``cache="hit"``.
    """
    runs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("format") != "repro-metrics":
            continue
        counters = document.get("counters", {})
        hits = counters.get("repro.plan_cache.hits", 0)
        misses = counters.get("repro.plan_cache.misses", 0)
        lookups = hits + misses
        histograms = document.get("histograms", {})
        warm = histograms.get('repro.service.request_seconds{cache="hit"}', {})
        runs.append(
            {
                "path": path,
                "hit_rate": hits / lookups if lookups else None,
                "warm_p95": warm.get("p95"),
                "slow_queries": counters.get("repro.service.slow_queries", 0),
            }
        )
    return runs


def load_shard_runs(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load ``repro-shard-smoke`` documents (``SHARD_*.json``).

    Each carries one row-backend wall time and a sharded run per worker
    count, with the measured parallel speedup.
    """
    runs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("format") != "repro-shard-smoke":
            continue
        runs.append(
            {
                "path": path,
                "rows": document.get("rows"),
                "query": document.get("query"),
                "row_seconds": document.get("row_seconds"),
                "sharded": document.get("sharded", []),
            }
        )
    return runs


def benchmark_key(benchmark: Dict[str, Any]) -> str:
    """A stable series key: test name with its parameter id."""
    return benchmark.get("fullname", benchmark.get("name", "?")).split("::")[-1]


def series_over_runs(runs: Sequence[Dict[str, Any]]) -> Dict[str, List[Optional[float]]]:
    """Mean seconds per benchmark key, one value per run (None when absent)."""
    keys: List[str] = []
    for run in runs:
        for benchmark in run["benchmarks"]:
            key = benchmark_key(benchmark)
            if key not in keys:
                keys.append(key)
    series: Dict[str, List[Optional[float]]] = {key: [] for key in keys}
    for run in runs:
        means = {
            benchmark_key(b): b.get("stats", {}).get("mean") for b in run["benchmarks"]
        }
        for key in keys:
            series[key].append(means.get(key))
    return series


# --------------------------------------------------------------------------- #
# Markdown report
# --------------------------------------------------------------------------- #


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:.3f}s" if value >= 1 else f"{value * 1e3:.3f}ms"


def render_markdown(
    bench_runs: Sequence[Dict[str, Any]],
    profile_runs: Sequence[Dict[str, Any]],
    service_runs: Sequence[Dict[str, Any]] = (),
    metrics_runs: Sequence[Dict[str, Any]] = (),
    shard_runs: Sequence[Dict[str, Any]] = (),
) -> str:
    lines = ["# Benchmark & cost-profile trajectory", ""]

    if bench_runs:
        lines.append(f"{len(bench_runs)} benchmark run(s):")
        for run in bench_runs:
            lines.append(f"- `{run['path']}` ({run['datetime'] or 'no timestamp'})")
        lines.append("")
        series = series_over_runs(bench_runs)
        header = "| benchmark | " + " | ".join(
            f"run {i + 1}" for i in range(len(bench_runs))
        )
        lines.append(header + " |")
        lines.append("|" + "---|" * (len(bench_runs) + 1))
        for key, values in sorted(series.items()):
            lines.append(
                f"| `{key}` | " + " | ".join(_fmt(v) for v in values) + " |"
            )
        lines.append("")

        lines.append("## Planner decisions (latest run)")
        lines.append("")
        latest = bench_runs[-1]
        for benchmark in latest["benchmarks"]:
            extra = benchmark.get("extra_info", {})
            interesting = {
                key: extra[key]
                for key in (
                    "join_order",
                    "hash_join_seconds",
                    "index_join_seconds",
                    "cold_plan_seconds",
                    "join_cardinalities",
                )
                if key in extra
            }
            if interesting:
                lines.append(f"- `{benchmark_key(benchmark)}`:")
                for key, value in interesting.items():
                    lines.append(f"  - {key}: `{value}`")
        lines.append("")

        backend_rows = [
            (
                benchmark_key(b),
                b.get("extra_info", {}).get("backend"),
                b.get("stats", {}).get("mean"),
            )
            for b in latest["benchmarks"]
            if b.get("extra_info", {}).get("backend")
        ]
        if backend_rows:
            lines.append("## Row vs columnar vs sharded backend (latest run)")
            lines.append("")
            lines.append("| benchmark | backend | mean |")
            lines.append("|---|---|---|")
            for key, backend, mean in backend_rows:
                lines.append(f"| `{key}` | {backend} | {_fmt(mean)} |")
            lines.append("")

    if shard_runs:
        lines.append("## Parallel speedup vs workers (shard smoke)")
        lines.append("")
        lines.append("| run | rows | row backend | workers | sharded | speedup |")
        lines.append("|---|---|---|---|---|---|")
        for index, run in enumerate(shard_runs):
            for point in run["sharded"]:
                speedup = point.get("speedup")
                lines.append(
                    f"| {index + 1} (`{run['path']}`) | {run['rows']} "
                    f"| {_fmt(run['row_seconds'])} | {point.get('workers')} "
                    f"| {_fmt(point.get('seconds'))} "
                    f"| {speedup:.2f}x |"
                    if speedup is not None
                    else f"| {index + 1} (`{run['path']}`) | {run['rows']} "
                    f"| {_fmt(run['row_seconds'])} | {point.get('workers')} "
                    f"| {_fmt(point.get('seconds'))} | — |"
                )
        lines.append("")

    if profile_runs:
        lines.append("## Fitted cost constants")
        lines.append("")
        for run in profile_runs:
            source = "self-tuned" if run["metadata"].get("self_tuned") else "calibrated"
            lines.append(f"### `{run['path']}` ({source})")
            lines.append("")
            engines = run["engines"]
            constants = sorted({c for model in engines.values() for c in model})
            lines.append("| engine | " + " | ".join(constants) + " |")
            lines.append("|" + "---|" * (len(constants) + 1))
            for engine, model in sorted(engines.items()):
                row = " | ".join(f"{model.get(c, float('nan')):.3f}" for c in constants)
                lines.append(f"| {engine} | {row} |")
            lines.append("")

    if service_runs:
        lines.append("## Query service (traffic benchmark reports)")
        lines.append("")
        lines.append("| run | requests | plan-cache hit rate | warm p95 | replans |")
        lines.append("|---|---|---|---|---|")
        for index, run in enumerate(service_runs):
            hit = "—" if run["hit_rate"] is None else f"{run['hit_rate']:.0%}"
            lines.append(
                f"| {index + 1} (`{run['path']}`) | {run['requests']} | {hit} "
                f"| {_fmt(run['warm_p95'])} | {run.get('replans', '—')} |"
            )
        lines.append("")

    if metrics_runs:
        lines.append("## Metrics snapshots (registry counters + histograms)")
        lines.append("")
        lines.append("| run | plan-cache hit rate | warm request p95 | slow queries |")
        lines.append("|---|---|---|---|")
        for index, run in enumerate(metrics_runs):
            hit = "—" if run["hit_rate"] is None else f"{run['hit_rate']:.0%}"
            lines.append(
                f"| {index + 1} (`{run['path']}`) | {hit} "
                f"| {_fmt(run['warm_p95'])} | {run['slow_queries']} |"
            )
        lines.append("")

    if (
        not bench_runs
        and not profile_runs
        and not service_runs
        and not metrics_runs
        and not shard_runs
    ):
        lines.append("No artifacts found.")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# Dependency-free SVG line chart
# --------------------------------------------------------------------------- #

_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#9c755f", "#bab0ac", "#17becf",
)


def render_svg(series: Dict[str, List[Optional[float]]], title: str) -> str:
    """A log-scale line chart of seconds-per-benchmark over runs."""
    import math

    width, height = 960, 520
    margin_left, margin_right, margin_top, margin_bottom = 70, 340, 40, 40
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    values = [v for vs in series.values() for v in vs if v is not None and v > 0]
    if not values:
        return f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"><text x="20" y="40">no data</text></svg>'
    low, high = math.log10(min(values)), math.log10(max(values))
    if high - low < 1e-9:
        low, high = low - 0.5, high + 0.5
    run_count = max(len(vs) for vs in series.values())

    def x(run_index: int) -> float:
        if run_count == 1:
            return margin_left + plot_w / 2
        return margin_left + plot_w * run_index / (run_count - 1)

    def y(value: float) -> float:
        return margin_top + plot_h * (1 - (math.log10(value) - low) / (high - low))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{margin_left}" y="20" font-size="14">{title}</text>',
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#ccc"/>',
    ]
    # Log-decade gridlines and labels.
    decade = math.ceil(low)
    while decade <= high:
        gy = y(10 ** decade)
        parts.append(
            f'<line x1="{margin_left}" y1="{gy:.1f}" x2="{margin_left + plot_w}" '
            f'y2="{gy:.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{gy + 4:.1f}" text-anchor="end">1e{decade}s</text>'
        )
        decade += 1
    for run_index in range(run_count):
        parts.append(
            f'<text x="{x(run_index):.1f}" y="{height - 14}" text-anchor="middle">'
            f"run {run_index + 1}</text>"
        )
    for index, (key, vs) in enumerate(sorted(series.items())):
        color = _PALETTE[index % len(_PALETTE)]
        points = [
            f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(vs) if v is not None and v > 0
        ]
        if not points:
            continue
        if len(points) == 1:
            cx, cy = points[0].split(",")
            parts.append(f'<circle cx="{cx}" cy="{cy}" r="3" fill="{color}"/>')
        else:
            parts.append(
                f'<polyline points="{" ".join(points)}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        ly = margin_top + 14 * index
        parts.append(
            f'<line x1="{width - margin_right + 10}" y1="{ly}" '
            f'x2="{width - margin_right + 28}" y2="{ly}" stroke="{color}" stroke-width="2"/>'
        )
        label = key if len(key) <= 44 else key[:41] + "…"
        parts.append(f'<text x="{width - margin_right + 32}" y="{ly + 4}">{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_hit_rate_svg(series: Dict[str, List[Optional[float]]], title: str) -> str:
    """A linear 0–100% chart for the plan-cache hit-rate series."""
    width, height = 720, 320
    margin_left, margin_right, margin_top, margin_bottom = 60, 260, 40, 40
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    run_count = max((len(vs) for vs in series.values()), default=1)

    def x(run_index: int) -> float:
        if run_count == 1:
            return margin_left + plot_w / 2
        return margin_left + plot_w * run_index / (run_count - 1)

    def y(value: float) -> float:
        return margin_top + plot_h * (1 - value)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{margin_left}" y="20" font-size="14">{title}</text>',
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#ccc"/>',
    ]
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        gy = y(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{gy:.1f}" x2="{margin_left + plot_w}" '
            f'y2="{gy:.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{gy + 4:.1f}" text-anchor="end">{tick:.0%}</text>'
        )
    for run_index in range(run_count):
        parts.append(
            f'<text x="{x(run_index):.1f}" y="{height - 14}" text-anchor="middle">'
            f"run {run_index + 1}</text>"
        )
    for index, (key, vs) in enumerate(sorted(series.items())):
        color = _PALETTE[index % len(_PALETTE)]
        points = [f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(vs) if v is not None]
        if not points:
            continue
        if len(points) == 1:
            cx, cy = points[0].split(",")
            parts.append(f'<circle cx="{cx}" cy="{cy}" r="3" fill="{color}"/>')
        else:
            parts.append(
                f'<polyline points="{" ".join(points)}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        ly = margin_top + 14 * index
        parts.append(
            f'<line x1="{width - margin_right + 10}" y1="{ly}" '
            f'x2="{width - margin_right + 28}" y2="{ly}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{width - margin_right + 32}" y="{ly + 4}">{key}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_svg_matplotlib(series, title, path) -> bool:
    """Prefer matplotlib when the environment has it; never require it."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    figure, axis = plt.subplots(figsize=(11, 6))
    for key, vs in sorted(series.items()):
        xs = [i for i, v in enumerate(vs) if v is not None]
        ys = [v for v in vs if v is not None]
        if ys:
            axis.plot(xs, ys, marker="o", label=key)
    axis.set_yscale("log")
    axis.set_xlabel("run")
    axis.set_ylabel("mean seconds")
    axis.set_title(title)
    axis.legend(fontsize=6, loc="center left", bbox_to_anchor=(1.0, 0.5))
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)
    return True


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render the BENCH/COST_PROFILE artifact trajectory "
        "(markdown + SVG, no third-party dependencies required)."
    )
    parser.add_argument("--bench", nargs="*", default=[], help="BENCH_*.json files")
    parser.add_argument(
        "--profiles", nargs="*", default=[], help="COST_PROFILE_*.json files"
    )
    parser.add_argument(
        "--service", nargs="*", default=[], help="SERVICE_*.json traffic reports"
    )
    parser.add_argument(
        "--metrics", nargs="*", default=[], help="METRICS_*.json registry snapshots"
    )
    parser.add_argument(
        "--shard", nargs="*", default=[], help="SHARD_*.json shard-smoke documents"
    )
    parser.add_argument("--output", default="TRAJECTORY", help="output path prefix")
    args = parser.parse_args(argv)

    requested = (
        set(args.bench)
        | set(args.profiles)
        | set(args.service)
        | set(args.metrics)
        | set(args.shard)
    )
    bench_paths = [path for path in args.bench if os.path.exists(path)]
    profile_paths = [path for path in args.profiles if os.path.exists(path)]
    service_paths = [path for path in args.service if os.path.exists(path)]
    metrics_paths = [path for path in args.metrics if os.path.exists(path)]
    shard_paths = [path for path in args.shard if os.path.exists(path)]
    found = (
        set(bench_paths)
        | set(profile_paths)
        | set(service_paths)
        | set(metrics_paths)
        | set(shard_paths)
    )
    for path in sorted(requested - found):
        print(f"warning: skipping missing artifact {path}")

    bench_runs = load_bench_runs(bench_paths)
    profile_runs = load_profile_runs(profile_paths)
    service_runs = load_service_runs(service_paths)
    metrics_runs = load_metrics_runs(metrics_paths)
    shard_runs = load_shard_runs(shard_paths)

    markdown_path = f"{args.output}.md"
    with open(markdown_path, "w", encoding="utf-8") as handle:
        handle.write(
            render_markdown(
                bench_runs, profile_runs, service_runs, metrics_runs, shard_runs
            )
        )
    print(f"wrote {markdown_path}")

    series = series_over_runs(bench_runs) if bench_runs else {}
    # The service's warm p95 joins the latency chart: it is a seconds-valued
    # series on the same log scale as the planner benchmarks.
    p95_service = [run["warm_p95"] for run in service_runs]
    if any(v is not None for v in p95_service):
        series["service warm p95 (report)"] = p95_service
    p95_metrics = [run["warm_p95"] for run in metrics_runs]
    if any(v is not None for v in p95_metrics):
        series["service warm p95 (metrics)"] = p95_metrics
    # Shard-smoke wall times join the same chart: the row baseline plus one
    # "parallel speedup vs workers" series per worker count.
    if shard_runs:
        rows_series = [run["row_seconds"] for run in shard_runs]
        if any(v is not None for v in rows_series):
            series["shard smoke: row backend"] = rows_series
        worker_counts = sorted(
            {
                point.get("workers")
                for run in shard_runs
                for point in run["sharded"]
                if point.get("workers") is not None
            }
        )
        for count in worker_counts:
            series[f"shard smoke: sharded workers={count}"] = [
                next(
                    (
                        point.get("seconds")
                        for point in run["sharded"]
                        if point.get("workers") == count
                    ),
                    None,
                )
                for run in shard_runs
            ]
    svg_path = f"{args.output}.svg"
    if not render_svg_matplotlib(series, "benchmark trajectory (mean seconds)", svg_path):
        with open(svg_path, "w", encoding="utf-8") as handle:
            handle.write(render_svg(series, "benchmark trajectory (mean seconds, log scale)"))
    print(f"wrote {svg_path}")

    hit_series: Dict[str, List[Optional[float]]] = {}
    hits_service = [run["hit_rate"] for run in service_runs]
    if any(v is not None for v in hits_service):
        hit_series["hit rate (report)"] = hits_service
    hits_metrics = [run["hit_rate"] for run in metrics_runs]
    if any(v is not None for v in hits_metrics):
        hit_series["hit rate (metrics)"] = hits_metrics
    if hit_series:
        hit_path = f"{args.output}_service.svg"
        with open(hit_path, "w", encoding="utf-8") as handle:
            handle.write(render_hit_rate_svg(hit_series, "plan-cache hit rate over runs"))
        print(f"wrote {hit_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
