"""Benchmark sizing knobs, importable by module name.

Benchmark modules import these helpers with ``from _bench_config import …``
rather than ``from conftest import …``: conftest modules are loaded by
pytest under a path-dependent module name, so importing one *by name* is a
collection-order lottery once more than one conftest exists in the repo.

* ``REPRO_BENCH_ROWS``      — base relation size (default 1000)
* ``REPRO_BENCH_MAX_ROWS``  — largest size of the scaling sweeps (default 2000)
"""

from __future__ import annotations

import os


def base_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_ROWS", "1000"))


def max_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_ROWS", "2000"))


def size_sweep() -> tuple:
    top = max_rows()
    return tuple(sorted({top // 4, top // 2, top}))
